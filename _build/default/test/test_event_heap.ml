open Mbac_sim
open Test_util

let test_ordering () =
  let h = Event_heap.create () in
  List.iter (fun t -> Event_heap.push h ~time:t (int_of_float t))
    [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = ref [] in
  let rec drain () =
    match Event_heap.pop h with
    | Some (_, v) ->
        order := v :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_fifo_ties () =
  let h = Event_heap.create () in
  List.iter (fun v -> Event_heap.push h ~time:1.0 v) [ 10; 20; 30 ];
  let v1 = Option.get (Event_heap.pop h) in
  let v2 = Option.get (Event_heap.pop h) in
  let v3 = Option.get (Event_heap.pop h) in
  Alcotest.(check (list int)) "insertion order on ties" [ 10; 20; 30 ]
    [ snd v1; snd v2; snd v3 ]

let test_empty () =
  let h = Event_heap.create () in
  Alcotest.(check bool) "empty" true (Event_heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Event_heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Event_heap.peek_time h = None)

let test_peek () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:2.0 'b';
  Event_heap.push h ~time:1.0 'a';
  Alcotest.(check (option (float 0.0))) "peek" (Some 1.0) (Event_heap.peek_time h);
  Alcotest.(check int) "size" 2 (Event_heap.size h)

let test_clear () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:1.0 ();
  Event_heap.clear h;
  Alcotest.(check bool) "cleared" true (Event_heap.is_empty h)

let test_heap_property =
  qcheck ~count:200 "pop yields non-decreasing times"
    QCheck.(list_of_size Gen.(int_range 0 300) (float_range 0.0 1e6))
    (fun times ->
      let h = Event_heap.create () in
      List.iter (fun t -> Event_heap.push h ~time:t ()) times;
      let rec check last =
        match Event_heap.pop h with
        | None -> true
        | Some (t, ()) -> t >= last && check t
      in
      check neg_infinity)

let test_interleaved =
  qcheck ~count:100 "interleaved push/pop matches a sorted-list model"
    QCheck.(list_of_size Gen.(int_range 1 200) (float_range 0.0 100.0))
    (fun times ->
      let h = Event_heap.create () in
      let model = ref [] in
      let ok = ref true in
      List.iteri
        (fun i t ->
          Event_heap.push h ~time:t i;
          model := List.merge compare !model [ t ];
          if i mod 3 = 0 then
            match (Event_heap.pop h, !model) with
            | Some (pt, _), m0 :: rest ->
                if pt <> m0 then ok := false else model := rest
            | _, _ -> ok := false)
        times;
      (* drain and compare the remainder *)
      List.iter
        (fun expected ->
          match Event_heap.pop h with
          | Some (pt, _) when pt = expected -> ()
          | _ -> ok := false)
        !model;
      !ok && Event_heap.is_empty h)

let test_nan_rejected () =
  let h = Event_heap.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_heap.push: NaN time")
    (fun () -> Event_heap.push h ~time:nan ())

let suite =
  [ ( "event_heap",
      [ test "ordering" test_ordering;
        test "FIFO tie-breaking" test_fifo_ties;
        test "empty heap" test_empty;
        test "peek and size" test_peek;
        test "clear" test_clear;
        test_heap_property;
        test_interleaved;
        test "NaN rejected" test_nan_rejected ] ) ]
