open Mbac_numerics
open Test_util

let test_power_of_two () =
  Alcotest.(check bool) "1" true (Fft.is_power_of_two 1);
  Alcotest.(check bool) "64" true (Fft.is_power_of_two 64);
  Alcotest.(check bool) "48" false (Fft.is_power_of_two 48);
  Alcotest.(check bool) "0" false (Fft.is_power_of_two 0);
  Alcotest.(check int) "next 1" 1 (Fft.next_power_of_two 1);
  Alcotest.(check int) "next 5" 8 (Fft.next_power_of_two 5);
  Alcotest.(check int) "next 64" 64 (Fft.next_power_of_two 64)

let test_impulse () =
  (* FFT of a delta is the all-ones sequence. *)
  let n = 8 in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  re.(0) <- 1.0;
  Fft.fft ~re ~im;
  Array.iter (fun x -> check_close_abs ~tol:1e-12 "re 1" 1.0 x) re;
  Array.iter (fun x -> check_close_abs ~tol:1e-12 "im 0" 0.0 x) im

let test_single_tone () =
  (* cos(2 pi k0 t / n) has spikes of n/2 at bins k0 and n-k0. *)
  let n = 64 and k0 = 5 in
  let pi = 4.0 *. atan 1.0 in
  let re =
    Array.init n (fun i ->
        cos (2.0 *. pi *. float_of_int (k0 * i) /. float_of_int n))
  in
  let im = Array.make n 0.0 in
  Fft.fft ~re ~im;
  for k = 0 to n - 1 do
    let mag = sqrt ((re.(k) *. re.(k)) +. (im.(k) *. im.(k))) in
    let expected = if k = k0 || k = n - k0 then 32.0 else 0.0 in
    check_close_abs ~tol:1e-9 (Printf.sprintf "bin %d" k) expected mag
  done

let test_roundtrip =
  qcheck ~count:100 "ifft . fft = id"
    QCheck.(array_of_size (Gen.return 128) (float_range (-10.0) 10.0))
    (fun xs ->
      let re = Array.copy xs and im = Array.make 128 0.0 in
      Fft.fft ~re ~im;
      Fft.ifft ~re ~im;
      Array.for_all2 (fun a b -> abs_float (a -. b) <= 1e-10) re xs
      && Array.for_all (fun x -> abs_float x <= 1e-10) im)

let test_parseval =
  qcheck ~count:100 "Parseval's identity"
    QCheck.(array_of_size (Gen.return 64) (float_range (-10.0) 10.0))
    (fun xs ->
      let n = Array.length xs in
      let time_energy = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
      let re = Array.copy xs and im = Array.make n 0.0 in
      Fft.fft ~re ~im;
      let freq_energy = ref 0.0 in
      for k = 0 to n - 1 do
        freq_energy := !freq_energy +. (re.(k) *. re.(k)) +. (im.(k) *. im.(k))
      done;
      abs_float ((!freq_energy /. float_of_int n) -. time_energy)
      <= 1e-8 *. (1.0 +. time_energy))

let test_linearity () =
  let n = 32 in
  let rng = Mbac_stats.Rng.create ~seed:600 in
  let a = Array.init n (fun _ -> Mbac_stats.Rng.float rng) in
  let b = Array.init n (fun _ -> Mbac_stats.Rng.float rng) in
  let fft_of xs =
    let re = Array.copy xs and im = Array.make n 0.0 in
    Fft.fft ~re ~im;
    (re, im)
  in
  let ra, ia = fft_of a and rb, ib = fft_of b in
  let rs, is_ = fft_of (Array.init n (fun i -> a.(i) +. b.(i))) in
  for k = 0 to n - 1 do
    check_close_abs ~tol:1e-10 "linear re" (ra.(k) +. rb.(k)) rs.(k);
    check_close_abs ~tol:1e-10 "linear im" (ia.(k) +. ib.(k)) is_.(k)
  done

let test_autocorrelation_fft_matches_direct () =
  let rng = Mbac_stats.Rng.create ~seed:601 in
  let xs = Array.init 500 (fun _ -> Mbac_stats.Sample.gaussian rng ~mu:1.0 ~sigma:2.0) in
  let fast = Fft.autocorrelation_fft xs ~max_lag:20 in
  for k = 0 to 20 do
    let direct = Mbac_stats.Descriptive.autocorrelation xs k in
    check_close_abs ~tol:1e-9 (Printf.sprintf "acf lag %d" k) direct fast.(k)
  done

let test_invalid () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Fft: length must be a power of 2") (fun () ->
      Fft.fft ~re:(Array.make 3 0.0) ~im:(Array.make 3 0.0))

let suite =
  [ ( "fft",
      [ test "power-of-two helpers" test_power_of_two;
        test "impulse" test_impulse;
        test "single tone" test_single_tone;
        test_roundtrip;
        test_parseval;
        test "linearity" test_linearity;
        test "fft autocorrelation = direct" test_autocorrelation_fft_matches_direct;
        test "invalid" test_invalid ] ) ]
