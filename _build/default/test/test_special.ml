open Mbac_stats
open Test_util

(* Reference values computed with 30+ digit arithmetic (Wolfram/mpmath). *)
let erf_reference =
  [ (0.1, 0.11246291601828489); (0.5, 0.52049987781304654);
    (1.0, 0.84270079294971487); (1.5, 0.96610514647531073);
    (2.0, 0.99532226501895273); (3.0, 0.99997790950300142) ]

let erfc_reference =
  [ (1.0, 0.15729920705028513); (2.0, 4.6777349810472658e-03);
    (3.0, 2.2090496998585441e-05); (4.0, 1.5417257900280018e-08);
    (5.0, 1.5374597944280349e-12); (8.0, 1.1224297172982928e-29);
    (10.0, 2.0884875837625448e-45) ]

let test_erf_values () =
  List.iter
    (fun (x, v) -> check_close ~tol:1e-13 (Printf.sprintf "erf %g" x) v (Special.erf x))
    erf_reference

let test_erfc_values () =
  List.iter
    (fun (x, v) ->
      check_close ~tol:1e-12 (Printf.sprintf "erfc %g" x) v (Special.erfc x))
    erfc_reference

let test_erf_odd () =
  List.iter
    (fun x ->
      check_close_abs ~tol:1e-15 "erf odd" (-.Special.erf x) (Special.erf (-.x)))
    [ 0.0; 0.3; 1.0; 2.5; 4.0 ]

let test_erfc_reflection () =
  List.iter
    (fun x ->
      check_close ~tol:1e-13 "erfc(-x) = 2 - erfc(x)"
        (2.0 -. Special.erfc x)
        (Special.erfc (-.x)))
    [ 0.1; 1.0; 2.0; 3.0 ]

let test_log_erfc () =
  (* Consistent with erfc where erfc does not underflow. *)
  List.iter
    (fun x ->
      check_close ~tol:1e-10
        (Printf.sprintf "log_erfc %g" x)
        (log (Special.erfc x))
        (Special.log_erfc x))
    [ 0.0; 0.5; 1.0; 2.0; 5.0; 10.0; 20.0 ];
  (* And finite far beyond underflow. *)
  let v = Special.log_erfc 50.0 in
  Alcotest.(check bool) "log_erfc 50 finite" true (Float.is_finite v);
  (* Asymptotics: log erfc x ~ -x^2 - log(x sqrt pi). *)
  let expected = (-2500.0) -. log (50.0 *. sqrt (4.0 *. atan 1.0)) in
  check_close ~tol:1e-3 "log_erfc 50 asymptotic" expected v

let test_lgamma () =
  check_close_abs ~tol:1e-13 "lgamma 1" 0.0 (Special.lgamma 1.0);
  check_close_abs ~tol:1e-13 "lgamma 2" 0.0 (Special.lgamma 2.0);
  check_close ~tol:1e-13 "lgamma 0.5"
    (0.5 *. log (4.0 *. atan 1.0))
    (Special.lgamma 0.5);
  check_close ~tol:1e-13 "lgamma 5" (log 24.0) (Special.lgamma 5.0);
  check_close ~tol:1e-13 "lgamma 10" (log 362880.0) (Special.lgamma 10.0)

let test_lgamma_recurrence =
  qcheck ~count:200 "lgamma(x+1) = lgamma(x) + log x"
    QCheck.(float_range 0.1 50.0)
    (fun x ->
      let lhs = Special.lgamma (x +. 1.0) in
      let rhs = Special.lgamma x +. log x in
      abs_float (lhs -. rhs) <= 1e-10 *. (1.0 +. abs_float rhs))

let test_ibeta_special_cases () =
  check_close ~tol:1e-12 "I_0.5(2,2)" 0.5 (Special.ibeta ~a:2.0 ~b:2.0 0.5);
  check_close ~tol:1e-12 "I_x(1,1)=x" 0.3 (Special.ibeta ~a:1.0 ~b:1.0 0.3);
  check_close ~tol:1e-12 "I_x(2,1)=x^2" 0.09 (Special.ibeta ~a:2.0 ~b:1.0 0.3);
  check_close ~tol:1e-12 "I_x(1,3)=1-(1-x)^3"
    (1.0 -. (0.7 ** 3.0))
    (Special.ibeta ~a:1.0 ~b:3.0 0.3);
  Alcotest.(check (float 0.0)) "I_0" 0.0 (Special.ibeta ~a:2.0 ~b:3.0 0.0);
  Alcotest.(check (float 0.0)) "I_1" 1.0 (Special.ibeta ~a:2.0 ~b:3.0 1.0)

let test_ibeta_symmetry =
  qcheck ~count:200 "I_x(a,b) = 1 - I_{1-x}(b,a)"
    QCheck.(triple (float_range 0.2 8.0) (float_range 0.2 8.0) (float_range 0.01 0.99))
    (fun (a, b, x) ->
      let lhs = Special.ibeta ~a ~b x in
      let rhs = 1.0 -. Special.ibeta ~a:b ~b:a (1.0 -. x) in
      abs_float (lhs -. rhs) <= 1e-9)

let test_ibeta_monotone =
  qcheck ~count:200 "I_x(a,b) monotone in x"
    QCheck.(triple (float_range 0.2 8.0) (float_range 0.2 8.0) (float_range 0.01 0.98))
    (fun (a, b, x) ->
      Special.ibeta ~a ~b x <= Special.ibeta ~a ~b (x +. 0.01) +. 1e-12)

let test_igamma () =
  (* P(1,x) = 1 - exp(-x) *)
  List.iter
    (fun x ->
      check_close ~tol:1e-12 "P(1,x)" (1.0 -. exp (-.x))
        (Special.igamma_p ~a:1.0 x))
    [ 0.1; 1.0; 3.0; 10.0 ];
  (* half-integer: P(0.5, x) = erf(sqrt x) *)
  List.iter
    (fun x ->
      check_close ~tol:1e-11 "P(0.5,x)=erf(sqrt x)"
        (Special.erf (sqrt x))
        (Special.igamma_p ~a:0.5 x))
    [ 0.2; 1.0; 4.0 ]

let test_igamma_complement =
  qcheck ~count:200 "P + Q = 1"
    QCheck.(pair (float_range 0.2 20.0) (float_range 0.0 40.0))
    (fun (a, x) ->
      let s = Special.igamma_p ~a x +. Special.igamma_q ~a x in
      abs_float (s -. 1.0) <= 1e-10)

let test_invalid_args () =
  Alcotest.check_raises "lgamma 0" (Invalid_argument "Special.lgamma: requires x > 0")
    (fun () -> ignore (Special.lgamma 0.0));
  Alcotest.check_raises "ibeta x>1"
    (Invalid_argument "Special.ibeta: requires 0 <= x <= 1") (fun () ->
      ignore (Special.ibeta ~a:1.0 ~b:1.0 1.5))

let suite =
  [ ( "special",
      [ test "erf reference values" test_erf_values;
        test "erfc reference values" test_erfc_values;
        test "erf is odd" test_erf_odd;
        test "erfc reflection" test_erfc_reflection;
        test "log_erfc" test_log_erfc;
        test "lgamma values" test_lgamma;
        test_lgamma_recurrence;
        test "ibeta special cases" test_ibeta_special_cases;
        test_ibeta_symmetry;
        test_ibeta_monotone;
        test "igamma values" test_igamma;
        test_igamma_complement;
        test "invalid arguments" test_invalid_args ] ) ]
