open Mbac_numerics
open Test_util

let pi = 4.0 *. atan 1.0

let test_simpson_polynomials () =
  (* Simpson is exact on cubics; adaptivity handles the rest. *)
  check_close ~tol:1e-12 "x^3 on [0,2]" 4.0
    (Integrate.adaptive_simpson (fun x -> x ** 3.0) ~lo:0.0 ~hi:2.0);
  check_close ~tol:1e-10 "x^7" (256.0 /. 8.0)
    (Integrate.adaptive_simpson (fun x -> x ** 7.0) ~lo:0.0 ~hi:2.0)

let test_simpson_transcendental () =
  check_close ~tol:1e-10 "sin on [0,pi]" 2.0
    (Integrate.adaptive_simpson sin ~lo:0.0 ~hi:pi);
  check_close ~tol:1e-10 "exp on [0,1]" (exp 1.0 -. 1.0)
    (Integrate.adaptive_simpson exp ~lo:0.0 ~hi:1.0);
  (* sharply peaked: gaussian density integrates to ~1 over [-8,8] *)
  check_close ~tol:1e-9 "gaussian bump" 1.0
    (Integrate.adaptive_simpson Mbac_stats.Gaussian.phi ~lo:(-8.0) ~hi:8.0)

let test_simpson_degenerate () =
  Alcotest.(check (float 0.0)) "empty interval" 0.0
    (Integrate.adaptive_simpson sin ~lo:1.0 ~hi:1.0)

let test_gauss_legendre () =
  check_close ~tol:1e-12 "GL x^2" (8.0 /. 3.0)
    (Integrate.gauss_legendre ~n:8 (fun x -> x *. x) ~lo:0.0 ~hi:2.0);
  check_close ~tol:1e-12 "GL sin" 2.0
    (Integrate.gauss_legendre ~n:24 sin ~lo:0.0 ~hi:pi);
  (* n-point GL is exact on degree-(2n-1) polynomials *)
  check_close ~tol:1e-11 "GL exactness" (2.0 /. 10.0)
    (Integrate.gauss_legendre ~n:5 (fun x -> x ** 9.0) ~lo:(-1.0) ~hi:1.0 |> fun v -> v +. 0.2)

let test_gl_vs_simpson =
  qcheck ~count:50 "GL agrees with adaptive Simpson"
    QCheck.(pair (float_range 0.1 3.0) (float_range 0.1 2.0))
    (fun (a, b) ->
      let f x = exp (-.a *. x) *. cos (b *. x) in
      let gl = Integrate.gauss_legendre ~n:40 f ~lo:0.0 ~hi:5.0 in
      let si = Integrate.adaptive_simpson f ~lo:0.0 ~hi:5.0 in
      abs_float (gl -. si) <= 1e-8 *. (1.0 +. abs_float si))

let test_semi_infinite () =
  (* int_0^inf exp(-x) = 1 *)
  check_close ~tol:1e-8 "exp decay" 1.0
    (Integrate.semi_infinite (fun x -> exp (-.x)) ~lo:0.0);
  (* int_0^inf x exp(-x^2/2) = 1 *)
  check_close ~tol:1e-8 "gaussian-type decay" 1.0
    (Integrate.semi_infinite (fun x -> x *. exp (-0.5 *. x *. x)) ~lo:0.0);
  (* int_0^inf Q-like integrand matching the paper's hitting formula shape:
     int_0^inf phi(a + t) dt = Q(a). *)
  let a = 2.0 in
  check_close ~tol:1e-8 "shifted gaussian tail"
    (Mbac_stats.Gaussian.q a)
    (Integrate.semi_infinite (fun t -> Mbac_stats.Gaussian.phi (a +. t)) ~lo:0.0)

let test_semi_infinite_from_offset () =
  (* int_3^inf exp(-x) = exp(-3) *)
  check_close ~tol:1e-8 "offset lower bound" (exp (-3.0))
    (Integrate.semi_infinite (fun x -> exp (-.x)) ~lo:3.0)

let test_invalid () =
  Alcotest.check_raises "reversed interval"
    (Invalid_argument "Integrate.adaptive_simpson: requires lo <= hi")
    (fun () -> ignore (Integrate.adaptive_simpson sin ~lo:1.0 ~hi:0.0))

let suite =
  [ ( "integrate",
      [ test "simpson on polynomials" test_simpson_polynomials;
        test "simpson on transcendentals" test_simpson_transcendental;
        test "degenerate interval" test_simpson_degenerate;
        test "gauss-legendre" test_gauss_legendre;
        test_gl_vs_simpson;
        test "semi-infinite integrals" test_semi_infinite;
        test "semi-infinite with offset" test_semi_infinite_from_offset;
        test "invalid" test_invalid ] ) ]
