(* End-to-end tests of the continuous-load simulator: conservation laws,
   determinism, and theory-vs-simulation agreement on small systems. *)
open Test_util

let params = Mbac.Params.make ~n:50.0 ~mu:1.0 ~sigma:0.3 ~t_h:200.0 ~t_c:1.0 ~p_q:1e-2

let make_source rng ~start =
  Mbac_traffic.Rcbr.create rng
    { Mbac_traffic.Rcbr.mu = 1.0; sigma = 0.3; t_c = 1.0 }
    ~start

let cfg ?(max_events = 400_000) () =
  let t_h_tilde = Mbac.Params.t_h_tilde params in
  { (Mbac_sim.Continuous_load.default_config
       ~capacity:(Mbac.Params.capacity params)
       ~holding_time_mean:params.Mbac.Params.t_h
       ~target_p_q:params.Mbac.Params.p_q)
    with
    Mbac_sim.Continuous_load.warmup = 5.0 *. t_h_tilde;
    batch_length = 2.0 *. t_h_tilde;
    max_events }

let run ?max_events ?(seed = 77) controller =
  Mbac_sim.Continuous_load.run
    (Mbac_stats.Rng.create ~seed)
    (cfg ?max_events ()) ~controller ~make_source

let test_conservation () =
  let r = run (Mbac.Controller.perfect params) in
  let open Mbac_sim.Continuous_load in
  (* flows in system = admitted - departed, and can never be negative *)
  Alcotest.(check bool) "admitted >= departed" true (r.admitted >= r.departed);
  (* mean population is near m* for the perfect controller *)
  let m_star = float_of_int (Mbac.Criterion.m_star params) in
  Alcotest.(check bool) "population tracks m*" true
    (abs_float (r.mean_flows -. m_star) < 1.5);
  (* measured load per flow ~ mu *)
  check_close ~tol:0.05 "per-flow load" 1.0 (r.mean_load /. r.mean_flows)

let test_determinism () =
  let r1 = run ~seed:123 (Mbac.Controller.memoryless ~capacity:50.0 ~p_ce:1e-2) in
  let r2 = run ~seed:123 (Mbac.Controller.memoryless ~capacity:50.0 ~p_ce:1e-2) in
  let open Mbac_sim.Continuous_load in
  Alcotest.(check bool) "identical runs" true
    (r1.p_f = r2.p_f && r1.admitted = r2.admitted && r1.events = r2.events)

let test_seed_sensitivity () =
  let r1 = run ~seed:1 (Mbac.Controller.perfect params) in
  let r2 = run ~seed:2 (Mbac.Controller.perfect params) in
  Alcotest.(check bool) "different seeds differ" true
    (r1.Mbac_sim.Continuous_load.admitted <> r2.Mbac_sim.Continuous_load.admitted)

let test_perfect_meets_target () =
  let r = run ~max_events:1_500_000 (Mbac.Controller.perfect params) in
  (* small system: CLT approximation is loose, allow a factor of ~2.5 *)
  let p_f = r.Mbac_sim.Continuous_load.p_f in
  Alcotest.(check bool)
    (Printf.sprintf "perfect p_f=%.3g vs p_q=%.3g" p_f params.Mbac.Params.p_q)
    true
    (p_f < 2.5 *. params.Mbac.Params.p_q)

let test_memoryless_violates_target () =
  let r =
    run ~max_events:600_000 (Mbac.Controller.memoryless ~capacity:50.0 ~p_ce:1e-2)
  in
  Alcotest.(check bool) "memoryless misses by >3x" true
    (r.Mbac_sim.Continuous_load.p_f > 3.0 *. params.Mbac.Params.p_q)

let test_memory_restores_target () =
  let t_m = Mbac.Params.t_h_tilde params in
  let r =
    run ~max_events:1_500_000
      (Mbac.Controller.with_memory ~capacity:50.0 ~p_ce:1e-2 ~t_m)
  in
  Alcotest.(check bool) "memory window restores QoS" true
    (r.Mbac_sim.Continuous_load.p_f < 2.5 *. params.Mbac.Params.p_q)

let test_never_exceeds_admissible_peak_rate () =
  (* With a peak-rate controller the population must never exceed
     floor(c / peak). *)
  let peak = 1.9 in
  let limit = Mbac.Criterion.peak_rate_count ~capacity:50.0 ~peak in
  let r = run (Mbac.Controller.peak_rate ~capacity:50.0 ~peak) in
  Alcotest.(check bool) "population bounded" true
    (r.Mbac_sim.Continuous_load.mean_flows <= float_of_int limit +. 1e-9);
  (* and utilization is proportionally low *)
  Alcotest.(check bool) "low utilization" true
    (r.Mbac_sim.Continuous_load.utilization < 0.6)

let test_utilization_ordering () =
  (* tighter targets carry less traffic *)
  let loose = run (Mbac.Controller.with_memory ~capacity:50.0 ~p_ce:1e-2 ~t_m:28.0) in
  let tight = run (Mbac.Controller.with_memory ~capacity:50.0 ~p_ce:1e-4 ~t_m:28.0) in
  Alcotest.(check bool) "tight target -> lower utilization" true
    (tight.Mbac_sim.Continuous_load.utilization
     < loose.Mbac_sim.Continuous_load.utilization)

let test_gaussian_fit_for_tiny_pf () =
  (* run a very conservative controller: direct counting sees nothing, the
     below-target rule should fire with a Gaussian-fit estimate *)
  let r =
    run ~max_events:1_000_000
      (Mbac.Controller.with_memory ~capacity:50.0 ~p_ce:1e-8 ~t_m:28.0)
  in
  let open Mbac_sim.Continuous_load in
  Alcotest.(check bool) "fit kind" true (r.estimate_kind = `Gaussian_fit);
  Alcotest.(check bool) "tiny estimate" true (r.p_f < 1e-4)

let test_empty_arrivals_never_happen () =
  (* under continuous load the system is never left empty after startup *)
  let r = run (Mbac.Controller.perfect params) in
  Alcotest.(check bool) "population stayed positive on average" true
    (r.Mbac_sim.Continuous_load.mean_flows > 10.0)

(* Fuzz: an arbitrary (bounded, possibly erratic) admissible function
   must never crash the simulator, and the run must satisfy the basic
   accounting identities. *)
let test_random_controller_fuzz =
  qcheck ~count:25 "random controllers keep the simulator sound"
    QCheck.(pair (int_range 0 10_000) (int_range 1 60))
    (fun (seed, cap) ->
      let fuzz_rng = Mbac_stats.Rng.create ~seed in
      let controller =
        Mbac.Controller.make ~name:"fuzz"
          ~observe:(fun _ -> ())
          ~admissible:(fun _ -> Mbac_stats.Rng.int fuzz_rng (cap + 1))
          ()
      in
      let cfg =
        { (Mbac_sim.Continuous_load.default_config ~capacity:50.0
             ~holding_time_mean:50.0 ~target_p_q:1e-2)
          with
          Mbac_sim.Continuous_load.warmup = 10.0;
          batch_length = 20.0;
          max_events = 30_000 }
      in
      let r =
        Mbac_sim.Continuous_load.run
          (Mbac_stats.Rng.create ~seed:(seed + 1))
          cfg ~controller ~make_source
      in
      let open Mbac_sim.Continuous_load in
      r.admitted >= r.departed
      && r.admitted - r.departed <= cap + 1
      && r.p_f >= 0.0 && r.p_f <= 1.0
      && r.sim_time >= 0.0)

let suite =
  [ ( "sim_integration",
      [ slow_test "conservation laws" test_conservation;
        test "determinism" test_determinism;
        test "seed sensitivity" test_seed_sensitivity;
        slow_test "perfect controller meets target" test_perfect_meets_target;
        slow_test "memoryless violates target" test_memoryless_violates_target;
        slow_test "memory restores target" test_memory_restores_target;
        slow_test "peak-rate bound respected" test_never_exceeds_admissible_peak_rate;
        slow_test "utilization ordering" test_utilization_ordering;
        slow_test "gaussian fit for tiny p_f" test_gaussian_fit_for_tiny_pf;
        slow_test "system stays populated" test_empty_arrivals_never_happen;
        test_random_controller_fuzz ] ) ]
