open Mbac_stats
open Test_util

let moments_of ~n f =
  let acc = Welford.create () in
  for _ = 1 to n do
    Welford.add acc (f ())
  done;
  (Welford.mean acc, Welford.variance acc)

let test_exponential_moments () =
  let rng = Rng.create ~seed:100 in
  let mean, var = moments_of ~n:200_000 (fun () -> Sample.exponential rng ~mean:3.0) in
  check_close ~tol:0.02 "exp mean" 3.0 mean;
  check_close ~tol:0.05 "exp variance" 9.0 var

let test_gaussian_moments () =
  let rng = Rng.create ~seed:101 in
  let mean, var =
    moments_of ~n:200_000 (fun () -> Sample.gaussian rng ~mu:2.0 ~sigma:0.5)
  in
  check_close ~tol:0.01 "gaussian mean" 2.0 mean;
  check_close ~tol:0.03 "gaussian variance" 0.25 var

let test_gaussian_tail () =
  (* Pr(Z > 2) should be close to Q(2). *)
  let rng = Rng.create ~seed:102 in
  let n = 400_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Sample.gaussian rng ~mu:0.0 ~sigma:1.0 > 2.0 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  check_close ~tol:0.05 "gaussian tail" (Gaussian.q 2.0) p

let test_truncated_nonneg =
  qcheck ~count:500 "truncated gaussian >= 0"
    QCheck.(pair (float_range 0.0 5.0) (float_range 0.0 3.0))
    (fun (mu, sigma) ->
      let rng = Rng.create ~seed:(int_of_float ((mu +. sigma) *. 1000.0)) in
      Sample.gaussian_truncated_nonneg rng ~mu ~sigma >= 0.0)

let test_truncated_matches_untruncated_when_far () =
  (* With mu/sigma large the truncation is a no-op distributionally. *)
  let rng = Rng.create ~seed:103 in
  let mean, var =
    moments_of ~n:100_000 (fun () ->
        Sample.gaussian_truncated_nonneg rng ~mu:1.0 ~sigma:0.3)
  in
  check_close ~tol:0.01 "truncated mean ~ mu" 1.0 mean;
  check_close ~tol:0.05 "truncated var ~ sigma^2" 0.09 var

let test_lognormal_of_moments () =
  let rng = Rng.create ~seed:104 in
  let mean, var =
    moments_of ~n:400_000 (fun () ->
        Sample.lognormal_of_moments rng ~mean:5.0 ~std:2.0)
  in
  check_close ~tol:0.02 "lognormal mean" 5.0 mean;
  check_close ~tol:0.1 "lognormal variance" 4.0 var

let test_pareto () =
  let rng = Rng.create ~seed:105 in
  (* shape 3, scale 2: mean = shape*scale/(shape-1) = 3. *)
  let mean, _ = moments_of ~n:400_000 (fun () -> Sample.pareto rng ~shape:3.0 ~scale:2.0) in
  check_close ~tol:0.03 "pareto mean" 3.0 mean;
  (* support check *)
  for _ = 1 to 1000 do
    Alcotest.(check bool) "pareto >= scale" true
      (Sample.pareto rng ~shape:3.0 ~scale:2.0 >= 2.0)
  done

let test_categorical () =
  let rng = Rng.create ~seed:106 in
  let weights = [| 1.0; 2.0; 3.0; 4.0 |] in
  let counts = Array.make 4 0 in
  let n = 200_000 in
  for _ = 1 to n do
    let i = Sample.categorical rng ~weights in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = weights.(i) /. 10.0 in
      let p = float_of_int c /. float_of_int n in
      if abs_float (p -. expected) > 0.01 then
        Alcotest.failf "categorical bucket %d: %.4f vs %.4f" i p expected)
    counts

let test_bernoulli () =
  let rng = Rng.create ~seed:107 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Sample.bernoulli rng ~p:0.3 then incr hits
  done;
  check_close ~tol:0.03 "bernoulli rate" 0.3 (float_of_int !hits /. float_of_int n)

let test_invalid () =
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "exponential mean 0"
    (Invalid_argument "Sample.exponential: requires mean > 0") (fun () ->
      ignore (Sample.exponential rng ~mean:0.0));
  Alcotest.check_raises "categorical empty"
    (Invalid_argument "Sample.categorical: empty weights") (fun () ->
      ignore (Sample.categorical rng ~weights:[||]))

let suite =
  [ ( "sample",
      [ test "exponential moments" test_exponential_moments;
        test "gaussian moments" test_gaussian_moments;
        test "gaussian tail probability" test_gaussian_tail;
        test_truncated_nonneg;
        test "truncation no-op when mass positive" test_truncated_matches_untruncated_when_far;
        test "lognormal by moments" test_lognormal_of_moments;
        test "pareto" test_pareto;
        test "categorical" test_categorical;
        test "bernoulli" test_bernoulli;
        test "invalid arguments" test_invalid ] ) ]
