open Mbac_stats
open Test_util

let test_ks_statistic_exact () =
  (* single point at the median of U(0,1): D = 0.5 *)
  let d = Ks_test.statistic ~cdf:(fun x -> x) [| 0.5 |] in
  check_close ~tol:1e-12 "single point" 0.5 d;
  (* perfectly placed grid has small D *)
  let xs = Array.init 100 (fun i -> (float_of_int i +. 0.5) /. 100.0) in
  let d = Ks_test.statistic ~cdf:(fun x -> x) xs in
  check_close ~tol:1e-12 "ideal grid" 0.005 d

let test_ks_accepts_correct_distribution () =
  let rng = Rng.create ~seed:1200 in
  let xs = Array.init 2000 (fun _ -> Sample.gaussian rng ~mu:0.0 ~sigma:1.0) in
  Alcotest.(check bool) "gaussian sample vs gaussian cdf" true
    (Ks_test.test ~cdf:Gaussian.cdf ~alpha:0.01 xs)

let test_ks_rejects_wrong_distribution () =
  let rng = Rng.create ~seed:1201 in
  (* exponential sample against a gaussian reference: must reject *)
  let xs = Array.init 2000 (fun _ -> Sample.exponential rng ~mean:1.0) in
  Alcotest.(check bool) "exponential vs gaussian rejected" false
    (Ks_test.test ~cdf:Gaussian.cdf ~alpha:0.01 xs);
  (* shifted gaussian also rejected *)
  let ys = Array.init 2000 (fun _ -> Sample.gaussian rng ~mu:0.3 ~sigma:1.0) in
  Alcotest.(check bool) "shifted gaussian rejected" false
    (Ks_test.test ~cdf:Gaussian.cdf ~alpha:0.01 ys)

let test_ks_p_value_calibration () =
  (* under the null, p-values should be roughly uniform: check the
     rejection rate at alpha = 0.1 over many small samples *)
  let rng = Rng.create ~seed:1202 in
  let rejections = ref 0 in
  let trials = 400 in
  for _ = 1 to trials do
    let xs = Array.init 200 (fun _ -> Rng.float rng) in
    if not (Ks_test.test ~cdf:(fun x -> Float.max 0.0 (Float.min 1.0 x)) ~alpha:0.1 xs)
    then incr rejections
  done;
  let rate = float_of_int !rejections /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "rejection rate %.3f ~ 0.1" rate)
    true
    (rate > 0.03 && rate < 0.2)

let test_ks_p_value_monotone =
  qcheck ~count:100 "p-value decreasing in the statistic"
    QCheck.(pair (float_range 0.01 0.3) (float_range 0.01 0.2))
    (fun (d, dd) ->
      Ks_test.p_value ~n:100 (d +. dd) <= Ks_test.p_value ~n:100 d +. 1e-12)

(* The functional-CLT assumption B.6: the aggregate of many RCBR flows,
   standardised, should pass a Gaussian KS test. *)
let test_aggregate_gaussianity_b6 () =
  let rng = Rng.create ~seed:1203 in
  let n_flows = 100 in
  let p = { Mbac_traffic.Rcbr.mu = 1.0; sigma = 0.3; t_c = 1.0 } in
  let path =
    Mbac_traffic.Aggregate.sample_path rng
      (fun rng ~start -> Mbac_traffic.Rcbr.create rng p ~start)
      ~n_sources:n_flows ~horizon:4000.0 ~dt:4.0
  in
  let mu = float_of_int n_flows *. 1.0 in
  let sigma = 0.3 *. sqrt (float_of_int n_flows) in
  let standardized = Array.map (fun s -> (s -. mu) /. sigma) path in
  Alcotest.(check bool) "B.6: aggregate is Gaussian" true
    (Ks_test.test ~cdf:Gaussian.cdf ~alpha:0.005 standardized)

let test_hurst_on_fgn () =
  let rng = Rng.create ~seed:1204 in
  List.iter
    (fun h ->
      let xs = Mbac_numerics.Fgn.generate rng ~hurst:h ~n:32768 in
      let est = Hurst.aggregated_variance xs in
      if abs_float (est -. h) > 0.1 then
        Alcotest.failf "aggregated variance H=%.2f estimated %.3f" h est)
    [ 0.5; 0.7; 0.85 ]

let test_hurst_rs_on_fgn () =
  let rng = Rng.create ~seed:1205 in
  let xs = Mbac_numerics.Fgn.generate rng ~hurst:0.8 ~n:32768 in
  let est = Hurst.rescaled_range xs in
  (* R/S is biased on short series; accept a generous band *)
  Alcotest.(check bool)
    (Printf.sprintf "R/S estimate %.3f for H=0.8" est)
    true
    (est > 0.65 && est < 0.95)

let test_hurst_iid_is_half () =
  let rng = Rng.create ~seed:1206 in
  let xs = Array.init 32768 (fun _ -> Sample.gaussian rng ~mu:0.0 ~sigma:1.0) in
  let est = Hurst.aggregated_variance xs in
  check_close_abs ~tol:0.07 "iid H = 0.5" 0.5 est

let test_hurst_mpeg_synth () =
  (* the synthetic Starwars substitute should measure as LRD, H ~ 0.8+ *)
  let rng = Rng.create ~seed:1207 in
  let t =
    Mbac_traffic.Mpeg_synth.generate rng
      (Mbac_traffic.Mpeg_synth.default_params ~mean_rate:1.0)
      ~frames:32768
  in
  let est = Hurst.aggregated_variance t.Mbac_traffic.Trace.rates in
  Alcotest.(check bool)
    (Printf.sprintf "synthetic video H=%.3f is LRD" est)
    true (est > 0.7)

let test_hurst_too_short () =
  Alcotest.check_raises "short series"
    (Invalid_argument "Hurst.aggregated_variance: series too short") (fun () ->
      ignore (Hurst.aggregated_variance (Array.make 10 0.0)))

let suite =
  [ ( "ks_hurst",
      [ test "KS statistic values" test_ks_statistic_exact;
        test "KS accepts correct" test_ks_accepts_correct_distribution;
        test "KS rejects wrong" test_ks_rejects_wrong_distribution;
        slow_test "KS p-value calibration" test_ks_p_value_calibration;
        test_ks_p_value_monotone;
        slow_test "assumption B.6 Gaussianity" test_aggregate_gaussianity_b6;
        slow_test "Hurst on exact fGn" test_hurst_on_fgn;
        slow_test "R/S estimator" test_hurst_rs_on_fgn;
        slow_test "iid gives H=0.5" test_hurst_iid_is_half;
        slow_test "synthetic video is LRD" test_hurst_mpeg_synth;
        test "validation" test_hurst_too_short ] ) ]
