open Mbac_sim
open Test_util

let test_overflow_fraction () =
  let m = Measurement.create ~capacity:10.0 ~warmup:0.0 ~batch_length:1.0 () in
  (* 3 units over capacity, 7 under -> 0.3 *)
  Measurement.record m ~t0:0.0 ~t1:3.0 ~load:11.0;
  Measurement.record m ~t0:3.0 ~t1:10.0 ~load:9.0;
  check_close ~tol:1e-12 "fraction" 0.3 (Measurement.overflow_fraction m);
  check_close ~tol:1e-12 "time" 10.0 (Measurement.measured_time m)

let test_warmup_discard () =
  let m = Measurement.create ~capacity:10.0 ~warmup:5.0 ~batch_length:1.0 () in
  (* all the overflow happens before the warmup deadline *)
  Measurement.record m ~t0:0.0 ~t1:5.0 ~load:20.0;
  Measurement.record m ~t0:5.0 ~t1:10.0 ~load:1.0;
  Alcotest.(check (float 0.0)) "warmup discarded" 0.0
    (Measurement.overflow_fraction m);
  check_close ~tol:1e-12 "only post-warmup time" 5.0 (Measurement.measured_time m)

let test_warmup_straddle () =
  let m = Measurement.create ~capacity:10.0 ~warmup:5.0 ~batch_length:1.0 () in
  (* segment straddles the deadline: only [5,8) counts *)
  Measurement.record m ~t0:0.0 ~t1:8.0 ~load:20.0;
  Measurement.record m ~t0:8.0 ~t1:11.0 ~load:0.0;
  check_close ~tol:1e-12 "straddled fraction" 0.5 (Measurement.overflow_fraction m)

let test_boundary_load_not_overflow () =
  (* load exactly at capacity is NOT overflow (strict >) *)
  let m = Measurement.create ~capacity:10.0 ~warmup:0.0 ~batch_length:1.0 () in
  Measurement.record m ~t0:0.0 ~t1:5.0 ~load:10.0;
  Alcotest.(check (float 0.0)) "boundary" 0.0 (Measurement.overflow_fraction m)

let test_gaussian_fit () =
  let m = Measurement.create ~capacity:12.0 ~warmup:0.0 ~batch_length:1.0 () in
  (* alternate loads 9 and 11: mean 10, std 1 -> fit = Q(2) *)
  for i = 0 to 999 do
    let load = if i mod 2 = 0 then 9.0 else 11.0 in
    Measurement.record m ~t0:(float_of_int i) ~t1:(float_of_int (i + 1)) ~load
  done;
  check_close ~tol:1e-6 "load mean" 10.0 (Measurement.load_mean m);
  check_close ~tol:1e-6 "load std" 1.0 (Measurement.load_std m);
  check_close ~tol:1e-6 "gaussian fit" (Mbac_stats.Gaussian.q 2.0)
    (Measurement.gaussian_fit_overflow m)

let test_check_stop_converged () =
  let m = Measurement.create ~capacity:10.0 ~warmup:0.0 ~batch_length:1.0 () in
  (* constant 30% overflow in every batch: CI collapses to zero *)
  for i = 0 to 49 do
    let t = float_of_int i in
    Measurement.record m ~t0:t ~t1:(t +. 0.3) ~load:11.0;
    Measurement.record m ~t0:(t +. 0.3) ~t1:(t +. 1.0) ~load:9.0
  done;
  (match Measurement.check_stop m ~target:1e-3 with
  | Measurement.Converged { p_f; ci_rel } ->
      check_close ~tol:1e-9 "converged value" 0.3 p_f;
      Alcotest.(check bool) "tight ci" true (ci_rel < 0.01)
  | _ -> Alcotest.fail "expected Converged")

let test_check_stop_below_target () =
  let m = Measurement.create ~capacity:10.0 ~warmup:0.0 ~batch_length:1.0 () in
  (* zero overflow for a long time, target large: below-target fires *)
  Measurement.record m ~t0:0.0 ~t1:100.0 ~load:5.0;
  (match Measurement.check_stop m ~target:0.5 with
  | Measurement.Below_target { p_f_fit; upper_bound } ->
      Alcotest.(check bool) "fit is 0 for constant load" true (p_f_fit = 0.0);
      Alcotest.(check bool) "upper bound small" true (upper_bound <= 0.005)
  | _ -> Alcotest.fail "expected Below_target")

let test_check_stop_running () =
  let m = Measurement.create ~capacity:10.0 ~warmup:0.0 ~batch_length:1.0 () in
  Measurement.record m ~t0:0.0 ~t1:3.0 ~load:11.0;
  (match Measurement.check_stop m ~target:1e-3 with
  | Measurement.Running -> ()
  | _ -> Alcotest.fail "expected Running (too few batches)")

let test_final_estimate_prefers_direct () =
  let m = Measurement.create ~capacity:10.0 ~warmup:0.0 ~batch_length:1.0 () in
  Measurement.record m ~t0:0.0 ~t1:5.0 ~load:11.0;
  Measurement.record m ~t0:5.0 ~t1:10.0 ~load:9.0;
  let est, kind = Measurement.final_estimate m ~target:1e-3 in
  check_close ~tol:1e-9 "direct value" 0.5 est;
  Alcotest.(check bool) "direct kind" true (kind = `Direct)

let test_final_estimate_fit_when_no_hits () =
  let m = Measurement.create ~capacity:100.0 ~warmup:0.0 ~batch_length:1.0 () in
  for i = 0 to 99 do
    let t = float_of_int i in
    Measurement.record m ~t0:t ~t1:(t +. 1.0)
      ~load:(50.0 +. (10.0 *. sin (t /. 3.0)))
  done;
  let est, kind = Measurement.final_estimate m ~target:1e-3 in
  Alcotest.(check bool) "fit kind" true (kind = `Gaussian_fit);
  Alcotest.(check bool) "plausible fit" true (est > 0.0 && est < 1e-3)

let test_point_sampling_matches_time_weighted () =
  (* constant-rate alternation: both estimators converge to the same duty *)
  let m =
    Measurement.create ~sample_spacing:0.7 ~capacity:10.0 ~warmup:0.0
      ~batch_length:1.0 ()
  in
  for i = 0 to 9999 do
    let t = 2.0 *. float_of_int i in
    Measurement.record m ~t0:t ~t1:(t +. 0.6) ~load:11.0;
    Measurement.record m ~t0:(t +. 0.6) ~t1:(t +. 2.0) ~load:9.0
  done;
  check_close ~tol:1e-3 "time-weighted duty" 0.3 (Measurement.overflow_fraction m);
  (* point sampling on a 0.7 grid over period-2 segments: not aligned, so
     it also sees ~30% *)
  check_close ~tol:0.05 "point-sampled duty" 0.3 (Measurement.point_fraction m);
  Alcotest.(check bool) "sample count" true (Measurement.point_samples m > 20_000)

let test_point_sampling_respects_warmup () =
  let m =
    Measurement.create ~sample_spacing:1.0 ~capacity:10.0 ~warmup:100.0
      ~batch_length:1.0 ()
  in
  Measurement.record m ~t0:0.0 ~t1:50.0 ~load:11.0;
  Alcotest.(check int) "no samples before warmup" 0 (Measurement.point_samples m);
  Alcotest.(check bool) "nan before samples" true
    (Float.is_nan (Measurement.point_fraction m))

let test_no_sampling_configured () =
  let m = Measurement.create ~capacity:10.0 ~warmup:0.0 ~batch_length:1.0 () in
  Measurement.record m ~t0:0.0 ~t1:100.0 ~load:11.0;
  Alcotest.(check bool) "nan without spacing" true
    (Float.is_nan (Measurement.point_fraction m))

let test_zero_length_segments_ignored () =
  let m = Measurement.create ~capacity:10.0 ~warmup:0.0 ~batch_length:1.0 () in
  Measurement.record m ~t0:5.0 ~t1:5.0 ~load:100.0;
  Alcotest.(check (float 0.0)) "nothing recorded" 0.0 (Measurement.measured_time m)

let suite =
  [ ( "measurement",
      [ test "overflow fraction" test_overflow_fraction;
        test "warmup discard" test_warmup_discard;
        test "warmup straddle" test_warmup_straddle;
        test "boundary load" test_boundary_load_not_overflow;
        test "gaussian fit" test_gaussian_fit;
        test "stop: converged" test_check_stop_converged;
        test "stop: below target" test_check_stop_below_target;
        test "stop: running" test_check_stop_running;
        test "final estimate direct" test_final_estimate_prefers_direct;
        test "final estimate fit" test_final_estimate_fit_when_no_hits;
        test "point sampling agreement" test_point_sampling_matches_time_weighted;
        test "point sampling warmup" test_point_sampling_respects_warmup;
        test "point sampling off by default" test_no_sampling_configured;
        test "zero-length segments" test_zero_length_segments_ignored ] ) ]
