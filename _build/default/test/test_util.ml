(* Shared helpers for the test suites. *)

let check_close ?(tol = 1e-12) name expected actual =
  let err =
    if expected = 0.0 then abs_float actual
    else abs_float ((actual -. expected) /. expected)
  in
  if not (err <= tol) then
    Alcotest.failf "%s: expected %.17g, got %.17g (rel err %.3g > tol %.3g)"
      name expected actual err tol

let check_close_abs ?(tol = 1e-12) name expected actual =
  let err = abs_float (actual -. expected) in
  if not (err <= tol) then
    Alcotest.failf "%s: expected %.17g, got %.17g (abs err %.3g > tol %.3g)"
      name expected actual err tol

let test name f = Alcotest.test_case name `Quick f
let slow_test name f = Alcotest.test_case name `Slow f

let qcheck ?(count = 200) name arbitrary prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arbitrary prop)
