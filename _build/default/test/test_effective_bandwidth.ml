open Test_util

let log_binomial_coeff n k =
  Mbac_stats.Special.lgamma (float_of_int (n + 1))
  -. Mbac_stats.Special.lgamma (float_of_int (k + 1))
  -. Mbac_stats.Special.lgamma (float_of_int (n - k + 1))

(* exact P(Binomial(n, p) > k) *)
let binomial_tail n p k =
  let acc = ref 0.0 in
  for j = k + 1 to n do
    acc :=
      !acc
      +. exp
           (log_binomial_coeff n j
           +. (float_of_int j *. log p)
           +. (float_of_int (n - j) *. log (1.0 -. p)))
  done;
  !acc

let test_gaussian_log_mgf () =
  let lm = Mbac.Effective_bandwidth.gaussian_log_mgf ~mu:2.0 ~sigma:0.5 in
  check_close_abs ~tol:1e-12 "at 0" 0.0 (lm 0.0);
  check_close ~tol:1e-12 "value" ((2.0 *. 1.5) +. (0.5 *. 2.25 *. 0.25)) (lm 1.5)

let test_onoff_log_mgf () =
  let lm = Mbac.Effective_bandwidth.onoff_log_mgf ~peak:3.0 ~p_on:0.4 in
  check_close_abs ~tol:1e-12 "at 0" 0.0 (lm 0.0);
  check_close ~tol:1e-12 "value" (log (0.6 +. (0.4 *. exp 3.0))) (lm 1.0)

let test_chernoff_gaussian_closed_form () =
  (* Gaussian: sup_theta (theta c - m(theta mu + theta^2 sigma^2/2))
     = (c - m mu)^2 / (2 m sigma^2) for c > m mu. *)
  let mu = 1.0 and sigma = 0.3 in
  let lm = Mbac.Effective_bandwidth.gaussian_log_mgf ~mu ~sigma in
  List.iter
    (fun (m, c) ->
      let expected = ((c -. (m *. mu)) ** 2.0) /. (2.0 *. m *. sigma *. sigma) in
      check_close ~tol:1e-6 "exponent"
        expected
        (Mbac.Effective_bandwidth.chernoff_exponent ~log_mgf:lm ~m ~capacity:c))
    [ (50.0, 60.0); (90.0, 100.0); (10.0, 20.0) ]

let test_chernoff_bounds_exact_tail () =
  (* on/off flows: S = peak Binomial(m, p); the Chernoff bound must upper
     bound the exact tail and be within its exponential order *)
  let peak = 2.0 and p_on = 0.3 in
  let lm = Mbac.Effective_bandwidth.onoff_log_mgf ~peak ~p_on in
  List.iter
    (fun (m, c) ->
      let bound =
        Mbac.Effective_bandwidth.chernoff_overflow_bound ~log_mgf:lm
          ~m:(float_of_int m) ~capacity:c
      in
      (* S > c <=> Binomial > c/peak *)
      let exact = binomial_tail m p_on (int_of_float (c /. peak)) in
      if bound < exact then
        Alcotest.failf "m=%d c=%g: bound %.4g < exact %.4g" m c bound exact;
      if exact > 0.0 && bound > exact *. 1e4 then
        Alcotest.failf "m=%d c=%g: bound %.4g too loose vs %.4g" m c bound exact)
    [ (50, 45.0); (100, 80.0); (30, 30.0) ]

let test_chernoff_overload_gives_one () =
  (* mean load above capacity: exponent 0, bound 1 *)
  let lm = Mbac.Effective_bandwidth.gaussian_log_mgf ~mu:1.0 ~sigma:0.3 in
  check_close ~tol:1e-9 "saturated bound" 1.0
    (Mbac.Effective_bandwidth.chernoff_overflow_bound ~log_mgf:lm ~m:200.0
       ~capacity:100.0)

let test_admissible_monotone_and_boundary () =
  let lm = Mbac.Effective_bandwidth.gaussian_log_mgf ~mu:1.0 ~sigma:0.3 in
  let m =
    Mbac.Effective_bandwidth.admissible ~log_mgf:lm ~capacity:100.0
      ~p_target:1e-3
  in
  (* boundary property *)
  let bound k =
    Mbac.Effective_bandwidth.chernoff_overflow_bound ~log_mgf:lm
      ~m:(float_of_int k) ~capacity:100.0
  in
  Alcotest.(check bool) "m admissible" true (bound m <= 1e-3);
  Alcotest.(check bool) "m+1 not admissible" true (bound (m + 1) > 1e-3);
  (* Chernoff is more conservative than the Gaussian-quantile criterion *)
  let m_gauss =
    Mbac.Criterion.admissible ~capacity:100.0 ~mu:1.0 ~sigma:0.3
      ~alpha:(Mbac_stats.Gaussian.q_inv 1e-3)
  in
  Alcotest.(check bool) "chernoff <= gaussian criterion" true (m <= m_gauss);
  (* and the alpha correspondence holds exactly for Gaussian flows *)
  let m_alpha =
    Mbac.Criterion.admissible ~capacity:100.0 ~mu:1.0 ~sigma:0.3
      ~alpha:(Mbac.Effective_bandwidth.gaussian_alpha_of_p 1e-3)
  in
  Alcotest.(check int) "alpha reduction" m_alpha m

let test_alpha_of_p () =
  (* sqrt(2 ln(1/p)) > Q^{-1}(p) for all p in (0, 1/2) *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "dominates gaussian quantile" true
        (Mbac.Effective_bandwidth.gaussian_alpha_of_p p
        > Mbac_stats.Gaussian.q_inv p))
    [ 0.4; 0.1; 1e-3; 1e-6; 1e-9 ]

let test_controller_ordering () =
  (* the chernoff controller admits no more than the CE controller at the
     same target, given identical observations *)
  let capacity = 100.0 in
  let mk_obs () =
    let rates = Array.init 60 (fun i -> 1.0 +. (0.3 *. sin (float_of_int i))) in
    let sum = Array.fold_left ( +. ) 0.0 rates in
    let sq = Array.fold_left (fun a r -> a +. (r *. r)) 0.0 rates in
    Mbac.Observation.make ~now:0.0 ~n:(Array.length rates) ~sum_rate:sum
      ~sum_sq:sq
  in
  let ce = Mbac.Controller.memoryless ~capacity ~p_ce:1e-3 in
  let ch =
    Mbac.Controller.chernoff ~capacity ~p_ce:1e-3 (Mbac.Estimator.memoryless ())
  in
  let obs = mk_obs () in
  Mbac.Controller.observe ce obs;
  Mbac.Controller.observe ch obs;
  Alcotest.(check bool) "chernoff more conservative" true
    (Mbac.Controller.admissible ch obs <= Mbac.Controller.admissible ce obs)

let suite =
  [ ( "effective_bandwidth",
      [ test "gaussian log-MGF" test_gaussian_log_mgf;
        test "on/off log-MGF" test_onoff_log_mgf;
        test "gaussian Chernoff closed form" test_chernoff_gaussian_closed_form;
        test "Chernoff bounds the exact binomial tail" test_chernoff_bounds_exact_tail;
        test "saturated bound" test_chernoff_overload_gives_one;
        test "admissible boundary" test_admissible_monotone_and_boundary;
        test "alpha correspondence" test_alpha_of_p;
        test "controller ordering" test_controller_ordering ] ) ]
