open Mbac_stats
open Test_util

let q_reference =
  [ (0.0, 0.5); (1.0, 0.15865525393145705); (2.0, 2.2750131948179195e-02);
    (3.0, 1.3498980316300933e-03); (4.0, 3.1671241833119921e-05);
    (5.0, 2.8665157187919333e-07); (6.0, 9.8658764503769814e-10);
    (7.0, 1.2798125438858350e-12) ]

let test_q_values () =
  List.iter
    (fun (x, v) ->
      check_close ~tol:1e-11 (Printf.sprintf "Q %g" x) v (Gaussian.q x))
    q_reference

let test_phi () =
  check_close ~tol:1e-14 "phi 0" (1.0 /. sqrt (8.0 *. atan 1.0)) (Gaussian.phi 0.0);
  check_close ~tol:1e-13 "phi 1"
    (exp (-0.5) /. sqrt (8.0 *. atan 1.0))
    (Gaussian.phi 1.0)

let test_cdf_q_complement =
  qcheck ~count:300 "cdf x + q x = 1" QCheck.(float_range (-8.0) 8.0) (fun x ->
      abs_float (Gaussian.cdf x +. Gaussian.q x -. 1.0) <= 1e-13)

let test_q_inv_roundtrip =
  qcheck ~count:300 "q (q_inv p) = p over 13 decades"
    QCheck.(float_range 1.0 30.0)
    (fun e ->
      let p = 10.0 ** -.e in
      let x = Gaussian.q_inv p in
      (* compare in log space for tiny p *)
      abs_float (Gaussian.log_q x -. log p) <= 1e-9)

let test_q_inv_central =
  qcheck ~count:300 "q_inv (q x) = x" QCheck.(float_range (-5.0) 8.0) (fun x ->
      (* Left of ~-5 the roundtrip is limited by the representation of p
         near 1 (q x loses tail resolution), tested separately below. *)
      abs_float (Gaussian.q_inv (Gaussian.q x) -. x) <= 1e-9 *. (1.0 +. abs_float x))

let test_q_inv_deep_left_tail =
  qcheck ~count:100 "q_inv (q x) = x to representation limits, x << 0"
    QCheck.(float_range (-8.0) (-5.0))
    (fun x ->
      (* |error| ~ eps / phi(x): the best any algorithm can do once p is
         rounded to a double near 1 *)
      let budget = 10.0 *. epsilon_float /. Gaussian.phi x in
      abs_float (Gaussian.q_inv (Gaussian.q x) -. x) <= budget)

let test_q_inv_known () =
  check_close ~tol:1e-9 "q_inv 0.5" 1.0 (1.0 +. Gaussian.q_inv 0.5);
  check_close ~tol:1e-10 "q_inv(Q(1.96))" 1.96
    (Gaussian.q_inv (Gaussian.q 1.96));
  (* alpha for p = 1e-3 is 3.090232306167813 *)
  check_close ~tol:1e-10 "q_inv 1e-3" 3.0902323061678132 (Gaussian.q_inv 1e-3);
  (* alpha for p = 1e-5 is 4.264890793922602 *)
  check_close ~tol:1e-10 "q_inv 1e-5" 4.2648907939226017 (Gaussian.q_inv 1e-5)

let test_log_q () =
  List.iter
    (fun x ->
      check_close ~tol:1e-10 "log_q vs q" (log (Gaussian.q x)) (Gaussian.log_q x))
    [ -2.0; 0.0; 1.0; 3.0; 8.0; 20.0 ]

let test_overflow_probability () =
  (* Q((c - m)/s) with c=110, m=100, s=5 -> Q(2). *)
  check_close ~tol:1e-12 "overflow basic"
    (Gaussian.q 2.0)
    (Gaussian.overflow_probability ~capacity:110.0 ~mean:100.0 ~std:5.0);
  Alcotest.(check (float 0.0)) "zero std below capacity" 0.0
    (Gaussian.overflow_probability ~capacity:10.0 ~mean:5.0 ~std:0.0);
  Alcotest.(check (float 0.0)) "zero std above capacity" 1.0
    (Gaussian.overflow_probability ~capacity:10.0 ~mean:15.0 ~std:0.0)

let test_tail_approx () =
  (* phi(x)/x approximates Q(x) to within ~10% by x = 3. *)
  let x = 4.0 in
  let ratio = Gaussian.q_tail_approx x /. Gaussian.q x in
  Alcotest.(check bool) "tail approx within 10% at x=4" true
    (ratio > 1.0 && ratio < 1.1)

let test_invalid () =
  Alcotest.check_raises "q_inv 0" (Invalid_argument "Gaussian.q_inv: requires 0 < p < 1")
    (fun () -> ignore (Gaussian.q_inv 0.0));
  Alcotest.check_raises "q_inv 1" (Invalid_argument "Gaussian.q_inv: requires 0 < p < 1")
    (fun () -> ignore (Gaussian.q_inv 1.0))

let suite =
  [ ( "gaussian",
      [ test "Q reference values" test_q_values;
        test "phi values" test_phi;
        test_cdf_q_complement;
        test_q_inv_roundtrip;
        test_q_inv_central;
        test_q_inv_deep_left_tail;
        test "q_inv known values" test_q_inv_known;
        test "log_q consistency" test_log_q;
        test "overflow_probability" test_overflow_probability;
        test "tail approximation sanity" test_tail_approx;
        test "invalid arguments" test_invalid ] ) ]
