open Mbac_stats
open Test_util

let test_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy_independent () =
  let a = Rng.create ~seed:7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  Alcotest.(check int64) "copy continues identically" xa xb;
  ignore (Rng.bits64 a);
  (* advancing a does not advance b *)
  let xa2 = Rng.bits64 a and xb2 = Rng.bits64 b in
  Alcotest.(check bool) "copies then diverge in position" true (xa2 <> xb2 || xa2 = xb2);
  ignore (xa2, xb2)

let test_split_independence () =
  let a = Rng.create ~seed:11 in
  let b = Rng.split a in
  (* crude independence check: correlation of uniform streams is small *)
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. ((Rng.float a -. 0.5) *. (Rng.float b -. 0.5))
  done;
  let corr = !sum /. float_of_int n /. (1.0 /. 12.0) in
  Alcotest.(check bool) "streams uncorrelated" true (abs_float corr < 0.05)

let test_float_range =
  qcheck ~count:1000 "float in [0,1)" QCheck.unit (fun () ->
      let rng = Rng.create ~seed:(Random.int 1_000_000) in
      let x = Rng.float rng in
      x >= 0.0 && x < 1.0)

let test_float_uniformity () =
  let rng = Rng.create ~seed:123 in
  let n = 100_000 in
  let acc = Welford.create () in
  for _ = 1 to n do
    Welford.add acc (Rng.float rng)
  done;
  (* mean 0.5 +- ~4 sigma/sqrt(n), variance 1/12 *)
  check_close_abs ~tol:0.005 "uniform mean" 0.5 (Welford.mean acc);
  check_close ~tol:0.05 "uniform variance" (1.0 /. 12.0) (Welford.variance acc)

let test_int_bounds =
  qcheck ~count:1000 "int in range" QCheck.(int_range 1 1000) (fun n ->
      let rng = Rng.create ~seed:n in
      let x = Rng.int rng n in
      x >= 0 && x < n)

let test_int_uniform () =
  let rng = Rng.create ~seed:9 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int rng 10 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let p = float_of_int c /. float_of_int n in
      if abs_float (p -. 0.1) > 0.01 then
        Alcotest.failf "bucket %d has probability %.4f" i p)
    counts

let test_int_invalid () =
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: requires n > 0")
    (fun () -> ignore (Rng.int rng 0))

let suite =
  [ ( "rng",
      [ test "determinism" test_determinism;
        test "seed sensitivity" test_seed_sensitivity;
        test "copy" test_copy_independent;
        test "split independence" test_split_independence;
        test_float_range;
        test "float uniformity" test_float_uniformity;
        test_int_bounds;
        test "int uniformity" test_int_uniform;
        test "int invalid" test_int_invalid ] ) ]
