open Test_util

let make_source rng ~start =
  Mbac_traffic.Rcbr.create rng
    { Mbac_traffic.Rcbr.mu = 1.0; sigma = 0.3; t_c = 1.0 }
    ~start

let alpha_q = Mbac_stats.Gaussian.q_inv 1e-2

let test_admission_respects_criterion () =
  let rng = Mbac_stats.Rng.create ~seed:1100 in
  for _ = 1 to 20 do
    let adm, admitted =
      Mbac_sim.Impulsive_driver.admit_burst rng ~n_offered:200 ~capacity:100.0
        ~alpha_ce:alpha_q ~make_source
    in
    Alcotest.(check int) "returns the admitted sources" adm.Mbac_sim.Impulsive_driver.m_0
      (Array.length admitted);
    (* the admitted count satisfies the criterion at the fixed point:
       re-estimating over exactly the admitted flows yields ~m_0 *)
    let rates = Array.map Mbac_traffic.Source.rate admitted in
    let mu = Mbac_stats.Descriptive.mean rates in
    let sigma = Mbac_stats.Descriptive.std rates in
    let expected =
      Mbac.Criterion.admissible ~capacity:100.0 ~mu ~sigma ~alpha:alpha_q
    in
    Alcotest.(check bool) "fixed point" true
      (abs (expected - adm.Mbac_sim.Impulsive_driver.m_0) <= 1)
  done

let test_m0_distribution_prop31 () =
  let rng = Mbac_stats.Rng.create ~seed:1101 in
  let n = 100 in
  let samples =
    Mbac_sim.Impulsive_driver.m0_samples rng ~replications:3000 ~n_offered:200
      ~capacity:(float_of_int n) ~alpha_ce:alpha_q ~make_source
  in
  let standardized =
    Array.map (fun m -> (m -. float_of_int n) /. sqrt (float_of_int n)) samples
  in
  (* Prop 3.1: mean -(sigma/mu) alpha, std sigma/mu *)
  check_close ~tol:0.06 "mean" (-0.3 *. alpha_q)
    (Mbac_stats.Descriptive.mean standardized);
  check_close ~tol:0.12 "std" 0.3 (Mbac_stats.Descriptive.std standardized);
  (* limit is Gaussian: skewness should be small *)
  Alcotest.(check bool) "roughly symmetric" true
    (abs_float (Mbac_stats.Descriptive.skewness standardized) < 0.35)

let test_steady_state_matches_prop33 () =
  let rng = Mbac_stats.Rng.create ~seed:1102 in
  let p_f, se =
    Mbac_sim.Impulsive_driver.steady_state_overflow rng ~replications:250
      ~n_offered:200 ~capacity:100.0 ~alpha_ce:alpha_q ~decorrelate_time:10.0
      ~samples_per_replication:40 ~sample_spacing:2.0 ~make_source
  in
  let theory = Mbac_stats.Gaussian.q (alpha_q /. sqrt 2.0) in
  Alcotest.(check bool)
    (Printf.sprintf "sim %.4g +- %.2g vs theory %.4g" p_f se theory)
    true
    (abs_float (p_f -. theory) < Float.max (4.0 *. se) (0.4 *. theory))

let test_overflow_vs_time_monotone_tail () =
  let rng = Mbac_stats.Rng.create ~seed:1103 in
  let times = [| 0.5; 2.0; 30.0 |] in
  let pf =
    Mbac_sim.Impulsive_driver.overflow_vs_time rng ~replications:2000
      ~n_offered:200 ~capacity:100.0 ~alpha_ce:alpha_q ~holding_time_mean:20.0
      ~times ~make_source
  in
  (* by t = 30 = 1.5 T_h most flows are gone: overflow ~ 0 *)
  Alcotest.(check bool) "tail vanishes" true (pf.(2) <= pf.(1));
  Alcotest.(check bool) "probabilities" true
    (Array.for_all (fun x -> x >= 0.0 && x <= 1.0) pf)

let test_requires_two_flows () =
  let rng = Mbac_stats.Rng.create ~seed:1 in
  Alcotest.check_raises "n_offered < 2"
    (Invalid_argument "Impulsive_driver: requires n_offered >= 2") (fun () ->
      ignore
        (Mbac_sim.Impulsive_driver.admit_burst rng ~n_offered:1 ~capacity:10.0
           ~alpha_ce:1.0 ~make_source))

let suite =
  [ ( "impulsive_driver",
      [ test "admission fixed point" test_admission_respects_criterion;
        slow_test "Prop 3.1 distribution" test_m0_distribution_prop31;
        slow_test "Prop 3.3 steady state" test_steady_state_matches_prop33;
        slow_test "transient tail" test_overflow_vs_time_monotone_tail;
        test "validation" test_requires_two_flows ] ) ]
