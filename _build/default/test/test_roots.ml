open Mbac_numerics
open Test_util

let test_bisect () =
  check_close ~tol:1e-9 "sqrt 2" (sqrt 2.0)
    (Roots.bisect (fun x -> (x *. x) -. 2.0) ~lo:0.0 ~hi:2.0);
  check_close ~tol:1e-9 "cos root" (2.0 *. atan 1.0)
    (Roots.bisect cos ~lo:0.0 ~hi:3.0)

let test_bisect_endpoint_roots () =
  Alcotest.(check (float 1e-12)) "root at lo" 1.0
    (Roots.bisect (fun x -> x -. 1.0) ~lo:1.0 ~hi:5.0);
  Alcotest.(check (float 1e-12)) "root at hi" 5.0
    (Roots.bisect (fun x -> x -. 5.0) ~lo:1.0 ~hi:5.0)

let test_brent () =
  check_close ~tol:1e-10 "sqrt 2" (sqrt 2.0)
    (Roots.brent (fun x -> (x *. x) -. 2.0) ~lo:0.0 ~hi:2.0);
  (* nasty flat function *)
  check_close ~tol:1e-6 "x^9" 1.0
    (1.0 +. Roots.brent (fun x -> x ** 9.0) ~lo:(-1.0) ~hi:1.5);
  (* transcendental with known root: x exp(x) = 1 -> Omega ~ 0.5671432904 *)
  check_close ~tol:1e-10 "omega constant" 0.5671432904097838
    (Roots.brent (fun x -> (x *. exp x) -. 1.0) ~lo:0.0 ~hi:1.0)

let test_brent_matches_bisect =
  qcheck ~count:100 "brent = bisect on monotone cubics"
    QCheck.(pair (float_range 0.1 5.0) (float_range (-3.0) 3.0))
    (fun (a, c) ->
      let f x = (a *. x *. x *. x) +. x -. c in
      let lo = -10.0 and hi = 10.0 in
      let rb = Roots.brent f ~lo ~hi and rc = Roots.bisect f ~lo ~hi in
      abs_float (rb -. rc) <= 1e-6)

let test_newton_safe () =
  let f x = (x *. x) -. 2.0 and df x = 2.0 *. x in
  check_close ~tol:1e-10 "newton sqrt2" (sqrt 2.0)
    (Roots.newton_safe ~f ~df ~lo:0.0 ~hi:2.0 1.0);
  (* Divergent start: must fall back to bisection and still converge. *)
  check_close ~tol:1e-8 "newton with bad start" (sqrt 2.0)
    (Roots.newton_safe ~f ~df ~lo:0.0 ~hi:2.0 0.0001)

let test_invert_increasing () =
  let f x = x ** 3.0 in
  check_close ~tol:1e-9 "cube root" 2.0 (Roots.invert_increasing f ~lo:0.0 ~hi:10.0 8.0);
  (* clamping *)
  Alcotest.(check (float 1e-12)) "clamp low" 0.0
    (Roots.invert_increasing f ~lo:0.0 ~hi:10.0 (-5.0));
  Alcotest.(check (float 1e-12)) "clamp high" 10.0
    (Roots.invert_increasing f ~lo:0.0 ~hi:10.0 1e9)

let test_invert_decreasing () =
  let f x = Mbac_stats.Gaussian.q x in
  (* Inverting the Gaussian tail must agree with q_inv. *)
  List.iter
    (fun p ->
      check_close ~tol:1e-6 "invert Q" (Mbac_stats.Gaussian.q_inv p)
        (Roots.invert_decreasing f ~lo:(-8.0) ~hi:9.0 p))
    [ 0.5; 0.1; 1e-3; 1e-6 ]

let test_invalid () =
  Alcotest.check_raises "no bracket"
    (Invalid_argument "Roots.bisect: interval does not bracket a root")
    (fun () -> ignore (Roots.bisect (fun x -> x +. 10.0) ~lo:0.0 ~hi:1.0));
  Alcotest.check_raises "brent no bracket"
    (Invalid_argument "Roots.brent: interval does not bracket a root")
    (fun () -> ignore (Roots.brent (fun x -> x +. 10.0) ~lo:0.0 ~hi:1.0))

let suite =
  [ ( "roots",
      [ test "bisection" test_bisect;
        test "roots at endpoints" test_bisect_endpoint_roots;
        test "brent" test_brent;
        test_brent_matches_bisect;
        test "safeguarded newton" test_newton_safe;
        test "invert increasing" test_invert_increasing;
        test "invert decreasing (Q function)" test_invert_decreasing;
        test "invalid" test_invalid ] ) ]
