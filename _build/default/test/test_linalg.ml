open Mbac_numerics
open Test_util

let test_solve_identity () =
  let a = [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let x = Linalg.solve a [| 3.0; 4.0 |] in
  check_close ~tol:1e-12 "x0" 3.0 x.(0);
  check_close ~tol:1e-12 "x1" 4.0 x.(1)

let test_solve_known () =
  (* 2x + y = 5; x - y = 1  ->  x = 2, y = 1 *)
  let a = [| [| 2.0; 1.0 |]; [| 1.0; -1.0 |] |] in
  let x = Linalg.solve a [| 5.0; 1.0 |] in
  check_close ~tol:1e-12 "x" 2.0 x.(0);
  check_close ~tol:1e-12 "y" 1.0 x.(1)

let test_solve_needs_pivoting () =
  (* zero in the leading position forces a row swap *)
  let a = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Linalg.solve a [| 7.0; 9.0 |] in
  check_close ~tol:1e-12 "x" 9.0 x.(0);
  check_close ~tol:1e-12 "y" 7.0 x.(1)

let test_solve_roundtrip =
  qcheck ~count:200 "solve then multiply recovers b"
    QCheck.(array_of_size (Gen.return 9) (float_range (-5.0) 5.0))
    (fun data ->
      let a = Array.init 3 (fun i -> Array.init 3 (fun j -> data.((3 * i) + j))) in
      (* make it diagonally dominant so it is well-conditioned *)
      for i = 0 to 2 do
        a.(i).(i) <- a.(i).(i) +. 20.0
      done;
      let b = [| 1.0; -2.0; 3.0 |] in
      let x = Linalg.solve a b in
      let b' = Linalg.mat_vec a x in
      Array.for_all2 (fun u v -> abs_float (u -. v) <= 1e-8) b b')

let test_singular () =
  let a = [| [| 1.0; 1.0 |]; [| 2.0; 2.0 |] |] in
  Alcotest.check_raises "singular" (Failure "Linalg.solve: singular matrix")
    (fun () -> ignore (Linalg.solve a [| 1.0; 2.0 |]))

let test_stationary_two_state () =
  (* on/off chain: rate on->off = 2, off->on = 1 -> pi = (1/3, 2/3) *)
  let q = [| [| -2.0; 2.0 |]; [| 1.0; -1.0 |] |] in
  let pi = Linalg.stationary_distribution q in
  check_close ~tol:1e-12 "pi0" (1.0 /. 3.0) pi.(0);
  check_close ~tol:1e-12 "pi1" (2.0 /. 3.0) pi.(1)

let test_stationary_three_state () =
  (* symmetric ring: uniform stationary distribution *)
  let q =
    [| [| -2.0; 1.0; 1.0 |]; [| 1.0; -2.0; 1.0 |]; [| 1.0; 1.0; -2.0 |] |]
  in
  let pi = Linalg.stationary_distribution q in
  Array.iter (fun v -> check_close ~tol:1e-12 "uniform" (1.0 /. 3.0) v) pi

let test_stationary_sums_to_one =
  qcheck ~count:100 "stationary distribution is a distribution"
    QCheck.(array_of_size (Gen.return 6) (float_range 0.1 5.0))
    (fun rates ->
      (* random irreducible 3-state generator *)
      let q =
        [| [| -.(rates.(0) +. rates.(1)); rates.(0); rates.(1) |];
           [| rates.(2); -.(rates.(2) +. rates.(3)); rates.(3) |];
           [| rates.(4); rates.(5); -.(rates.(4) +. rates.(5)) |] |]
      in
      let pi = Linalg.stationary_distribution q in
      let sum = Array.fold_left ( +. ) 0.0 pi in
      abs_float (sum -. 1.0) <= 1e-10 && Array.for_all (fun v -> v >= -1e-12) pi)

let suite =
  [ ( "linalg",
      [ test "identity" test_solve_identity;
        test "known system" test_solve_known;
        test "pivoting" test_solve_needs_pivoting;
        test_solve_roundtrip;
        test "singular matrix" test_singular;
        test "two-state stationary" test_stationary_two_state;
        test "ring stationary" test_stationary_three_state;
        test_stationary_sums_to_one ] ) ]
