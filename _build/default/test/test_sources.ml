open Mbac_traffic
open Test_util

let drive_source src ~until =
  (* fire all changes up to [until], return the number of changes *)
  let changes = ref 0 in
  while Source.next_change src <= until do
    Source.fire src ~now:(Source.next_change src);
    incr changes
  done;
  !changes

(* time-weighted mean/variance of a source's rate over a horizon *)
let time_stats src ~horizon =
  let acc = Mbac_stats.Welford.Weighted.create () in
  let t = ref 0.0 in
  while !t < horizon do
    let next = Float.min horizon (Source.next_change src) in
    Mbac_stats.Welford.Weighted.add acc ~weight:(next -. !t) (Source.rate src);
    t := next;
    if Source.next_change src <= !t then Source.fire src ~now:!t
  done;
  (Mbac_stats.Welford.Weighted.mean acc, Mbac_stats.Welford.Weighted.variance acc)

let test_rcbr_stats () =
  let rng = Mbac_stats.Rng.create ~seed:800 in
  let p = { Rcbr.mu = 2.0; sigma = 0.5; t_c = 1.0 } in
  let src = Rcbr.create rng p ~start:0.0 in
  let mean, var = time_stats src ~horizon:50_000.0 in
  check_close ~tol:0.02 "rcbr mean" 2.0 mean;
  check_close ~tol:0.06 "rcbr variance" 0.25 var

let test_rcbr_interval_rate () =
  (* ~ horizon / t_c changes expected *)
  let rng = Mbac_stats.Rng.create ~seed:801 in
  let src = Rcbr.create rng { Rcbr.mu = 1.0; sigma = 0.3; t_c = 2.0 } ~start:0.0 in
  let changes = drive_source src ~until:20_000.0 in
  check_close ~tol:0.05 "renegotiation rate" 10_000.0 (float_of_int changes)

let test_rcbr_autocorrelation () =
  (* aggregate of many rcbr sources should show acf ~ exp(-t/t_c) *)
  let rng = Mbac_stats.Rng.create ~seed:802 in
  let p = { Rcbr.mu = 1.0; sigma = 0.3; t_c = 1.0 } in
  let path =
    Aggregate.sample_path rng
      (fun rng ~start -> Rcbr.create rng p ~start)
      ~n_sources:50 ~horizon:4000.0 ~dt:0.25
  in
  List.iter
    (fun lag ->
      let expected = Rcbr.autocorrelation p (0.25 *. float_of_int lag) in
      let got = Mbac_stats.Descriptive.autocorrelation path lag in
      if abs_float (got -. expected) > 0.06 then
        Alcotest.failf "rcbr acf lag %d: %.3f vs %.3f" lag got expected)
    [ 1; 2; 4; 8; 12 ]

let test_rcbr_nonnegative =
  qcheck ~count:50 "rcbr rates are non-negative" QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Mbac_stats.Rng.create ~seed in
      let src = Rcbr.create rng { Rcbr.mu = 0.5; sigma = 0.4; t_c = 0.5 } ~start:0.0 in
      let ok = ref (Source.rate src >= 0.0) in
      for _ = 1 to 50 do
        Source.fire src ~now:(Source.next_change src);
        if Source.rate src < 0.0 then ok := false
      done;
      !ok)

let test_onoff_stats () =
  let rng = Mbac_stats.Rng.create ~seed:803 in
  let p = { Onoff.peak = 3.0; mean_on = 2.0; mean_off = 1.0 } in
  let src = Onoff.create rng p ~start:0.0 in
  let mean, var = time_stats src ~horizon:60_000.0 in
  check_close ~tol:0.02 "onoff mean" (Onoff.mean p) mean;
  check_close ~tol:0.05 "onoff variance" (Onoff.variance p) var;
  check_close ~tol:1e-12 "onoff mean formula" 2.0 (Onoff.mean p);
  check_close ~tol:1e-12 "onoff var formula" 2.0 (Onoff.variance p)

let test_onoff_alternates () =
  let rng = Mbac_stats.Rng.create ~seed:804 in
  let src =
    Onoff.create rng { Onoff.peak = 1.0; mean_on = 1.0; mean_off = 1.0 } ~start:0.0
  in
  for _ = 1 to 20 do
    let before = Source.rate src in
    Source.fire src ~now:(Source.next_change src);
    let after = Source.rate src in
    Alcotest.(check bool) "alternates" true (before <> after)
  done

let test_markov_fluid_matches_onoff () =
  (* two-state markov fluid == on/off source *)
  let p_onoff = { Onoff.peak = 2.0; mean_on = 3.0; mean_off = 1.0 } in
  let p_mf =
    { Markov_fluid.generator =
        [| [| -1.0; 1.0 |]; [| 1.0 /. 3.0; -1.0 /. 3.0 |] |];
      (* state 0 = off (leaves at rate 1/mean_off), state 1 = on *)
      rates = [| 0.0; 2.0 |] }
  in
  check_close ~tol:1e-12 "means agree" (Onoff.mean p_onoff) (Markov_fluid.mean p_mf);
  check_close ~tol:1e-12 "variances agree" (Onoff.variance p_onoff)
    (Markov_fluid.variance p_mf)

let test_markov_fluid_simulated_stats () =
  let p =
    { Markov_fluid.generator =
        [| [| -2.0; 1.0; 1.0 |]; [| 0.5; -1.0; 0.5 |]; [| 1.0; 1.0; -2.0 |] |];
      rates = [| 0.0; 1.0; 4.0 |] }
  in
  let rng = Mbac_stats.Rng.create ~seed:805 in
  let src = Markov_fluid.create rng p ~start:0.0 in
  let mean, var = time_stats src ~horizon:100_000.0 in
  check_close ~tol:0.03 "mf mean" (Markov_fluid.mean p) mean;
  check_close ~tol:0.06 "mf variance" (Markov_fluid.variance p) var

let test_markov_fluid_validation () =
  Alcotest.check_raises "bad rows"
    (Invalid_argument "Markov_fluid: generator rows must sum to 0") (fun () ->
      Markov_fluid.validate
        { Markov_fluid.generator = [| [| -1.0; 2.0 |]; [| 1.0; -1.0 |] |];
          rates = [| 0.0; 1.0 |] })

let test_ou_stats () =
  let rng = Mbac_stats.Rng.create ~seed:806 in
  let p = { Ou_source.mu = 5.0; sigma = 1.0; t_c = 1.0; dt = 0.1 } in
  let src = Ou_source.create rng p ~start:0.0 in
  let mean, var = time_stats src ~horizon:20_000.0 in
  check_close ~tol:0.02 "ou mean" 5.0 mean;
  check_close ~tol:0.08 "ou variance" 1.0 var

let test_ou_autocorrelation () =
  let rng = Mbac_stats.Rng.create ~seed:807 in
  let p = { Ou_source.mu = 5.0; sigma = 1.0; t_c = 2.0; dt = 0.2 } in
  let src = Ou_source.create rng p ~start:0.0 in
  let n = 100_000 in
  let xs = Array.make n 0.0 in
  for i = 0 to n - 1 do
    xs.(i) <- Source.rate src;
    Source.fire src ~now:(Source.next_change src)
  done;
  List.iter
    (fun lag ->
      let expected = exp (-.(0.2 *. float_of_int lag) /. 2.0) in
      let got = Mbac_stats.Descriptive.autocorrelation xs lag in
      if abs_float (got -. expected) > 0.05 then
        Alcotest.failf "ou acf lag %d: %.3f vs %.3f" lag got expected)
    [ 1; 5; 10; 20 ]

let test_source_fire_assertion () =
  let rng = Mbac_stats.Rng.create ~seed:808 in
  let src = Rcbr.create rng (Rcbr.default_params ~mu:1.0) ~start:0.0 in
  let peak = Source.peak_hint src in
  check_close ~tol:1e-9 "default peak hint" (1.0 +. (3.0 *. 0.3)) peak;
  Source.set_peak_hint src 9.0;
  check_close ~tol:1e-12 "peak hint override" 9.0 (Source.peak_hint src)

let suite =
  [ ( "sources",
      [ slow_test "rcbr stationary stats" test_rcbr_stats;
        test "rcbr renegotiation rate" test_rcbr_interval_rate;
        slow_test "rcbr autocorrelation" test_rcbr_autocorrelation;
        test_rcbr_nonnegative;
        slow_test "onoff stationary stats" test_onoff_stats;
        test "onoff alternation" test_onoff_alternates;
        test "markov fluid = onoff" test_markov_fluid_matches_onoff;
        slow_test "markov fluid stats" test_markov_fluid_simulated_stats;
        test "markov fluid validation" test_markov_fluid_validation;
        slow_test "ou stats" test_ou_stats;
        slow_test "ou autocorrelation" test_ou_autocorrelation;
        test "peak hints" test_source_fire_assertion ] ) ]
