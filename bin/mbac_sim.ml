(* Single continuous-load simulation with a chosen controller and source:
     mbac_sim --controller robust --n 100 --t-h 1000 --t-c 1 --p-q 1e-3
     mbac_sim --controller memoryless --source onoff --max-events 2000000 *)

open Cmdliner

type source_kind = Rcbr | Onoff | Ou | Lrd

let run_sim controller_name source_kind n mu sigma_ratio t_h t_c p_q t_m
    max_events seed reps jobs rare_event rare_levels rare_base rare_trials
    rare_pilot tele =
  let sigma = sigma_ratio *. mu in
  let p = Mbac.Params.make ~n ~mu ~sigma ~t_h ~t_c ~p_q in
  let capacity = Mbac.Params.capacity p in
  let t_h_tilde = Mbac.Params.t_h_tilde p in
  let t_m = match t_m with Some v -> v | None -> t_h_tilde in
  let peak = mu +. (3.0 *. sigma) in
  (* A controller carries mutable estimator state, so every replication
     needs a fresh one: validate the name once, then build per task. *)
  let make_controller =
    match controller_name with
    | "perfect" -> Ok (fun () -> Mbac.Controller.perfect p)
    | "memoryless" ->
        Ok (fun () -> Mbac.Controller.memoryless ~capacity ~p_ce:p_q)
    | "memory" ->
        Ok (fun () -> Mbac.Controller.with_memory ~capacity ~p_ce:p_q ~t_m)
    | "robust" -> Ok (fun () -> Mbac.Controller.robust p)
    | "measured-sum" ->
        Ok
          (fun () ->
            Mbac.Controller.measured_sum ~capacity ~utilization_target:0.9
              ~window:t_h_tilde ~peak)
    | "hoeffding" ->
        Ok
          (fun () ->
            Mbac.Controller.hoeffding ~capacity ~p_ce:p_q ~peak
              (Mbac.Estimator.ewma ~t_m))
    | "gkk" ->
        Ok
          (fun () ->
            Mbac.Controller.gkk ~capacity ~p_ce:p_q ~prior_mu:mu
              ~prior_var:(sigma *. sigma) ~prior_weight:0.5)
    | "peak-rate" -> Ok (fun () -> Mbac.Controller.peak_rate ~capacity ~peak)
    | other -> Error (Printf.sprintf "unknown controller %S" other)
  in
  match make_controller with
  | Error _ as e -> e
  | Ok _ when reps < 1 -> Error "--reps must be >= 1"
  | Ok _ when jobs < 1 -> Error "--jobs must be >= 1"
  | Ok _ when tele.Mbac_telemetry_cli.Flags.trace_sample < 1 ->
      Error "--trace-sample must be >= 1"
  | Ok _
    when not
           (Float.is_finite tele.Mbac_telemetry_cli.Flags.series_interval
           && tele.Mbac_telemetry_cli.Flags.series_interval > 0.0) ->
      Error "--series-interval must be finite and > 0"
  | Ok make_controller ->
      Mbac_telemetry_cli.Flags.install tele;
      let lrd_trace =
        lazy
          (let trng = Mbac_stats.Rng.create ~seed:(seed + 1) in
           let params = Mbac_traffic.Mpeg_synth.default_params ~mean_rate:mu in
           let raw = Mbac_traffic.Mpeg_synth.generate trng params ~frames:65536 in
           Mbac_traffic.Renegotiate.segments ~segment_len:24 ~percentile:0.95 raw)
      in
      (* Forcing a lazy from several domains races; materialize the
         shared trace before fanning out. *)
      if source_kind = Lrd then ignore (Lazy.force lrd_trace);
      let make_source rng ~start =
        match source_kind with
        | Rcbr ->
            Mbac_traffic.Rcbr.create rng { Mbac_traffic.Rcbr.mu; sigma; t_c }
              ~start
        | Onoff ->
            (* match mean and variance: peak p_on = mu, peak^2 p(1-p) = sigma^2 *)
            let p_on = 1.0 /. (1.0 +. ((sigma /. mu) ** 2.0)) in
            let peak = mu /. p_on in
            Mbac_traffic.Onoff.create rng
              { Mbac_traffic.Onoff.peak; mean_on = t_c *. (1.0 -. p_on);
                mean_off = t_c *. p_on }
              ~start
        | Ou ->
            Mbac_traffic.Ou_source.create rng
              { Mbac_traffic.Ou_source.mu; sigma; t_c; dt = t_c /. 10.0 }
              ~start
        | Lrd ->
            (* one shared trace per process; cheap memoization *)
            let trace = Lazy.force lrd_trace in
            Mbac_traffic.Trace_source.create rng trace ~start
      in
      let batch = 2.0 *. Float.max t_h_tilde (Float.max t_m t_c) in
      let cfg =
        { (Mbac_sim.Continuous_load.default_config ~capacity
             ~holding_time_mean:t_h ~target_p_q:p_q)
          with
          Mbac_sim.Continuous_load.warmup = 5.0 *. batch;
          batch_length = batch;
          max_events }
      in
      Format.printf "system: %a@." Mbac.Params.pp p;
      if rare_event then begin
        (* Multilevel-splitting estimate of the deep tail; replications
           do not apply (the engine parallelizes its own clone trials). *)
        let pilot_time =
          match rare_pilot with Some v -> v | None -> 200.0 *. batch
        in
        let scfg =
          { (Mbac_sim.Splitting.default_config ~pilot_time) with
            Mbac_sim.Splitting.levels = rare_levels;
            base_level = rare_base;
            trials_per_level = rare_trials }
        in
        Format.printf
          "controller: %s, source: %s, rare-event splitting: levels=%d \
           base=%g trials=%d pilot=%g@."
          (Mbac.Controller.name (make_controller ()))
          (match source_kind with
          | Rcbr -> "rcbr" | Onoff -> "onoff" | Ou -> "ou" | Lrd -> "lrd")
          rare_levels rare_base rare_trials pilot_time;
        let res =
          Mbac_sim.Splitting.run ~jobs ~seed scfg cfg
            ~controller:(make_controller ()) ~make_source
        in
        Format.printf "%a@." Mbac_sim.Splitting.pp_result res;
        Format.printf "theory (eqn 37 at this T_m): %.4g@."
          (Mbac.Memory_formula.overflow_cached ~p ~t_m
             ~alpha_ce:(Mbac.Params.alpha_q p));
        Mbac_telemetry_cli.Flags.finish tele;
        Ok ()
      end
      else begin
      Format.printf "controller: %s, source: %s, replications: %d@."
        (Mbac.Controller.name (make_controller ()))
        (match source_kind with
        | Rcbr -> "rcbr" | Onoff -> "onoff" | Ou -> "ou" | Lrd -> "lrd")
        reps;
      (* Replication streams are derived from (seed, rep index) up
         front, so the results do not depend on --jobs; a single
         replication keeps the historical [Rng.create ~seed] stream. *)
      let rng_for_rep i =
        if reps = 1 then Mbac_stats.Rng.create ~seed
        else Mbac_stats.Rng.derive ~seed ~tag:(Printf.sprintf "rep-%d" i)
      in
      let tasks =
        List.init reps (fun i () ->
            Mbac_sim.Continuous_load.run (rng_for_rep i) cfg
              ~controller:(make_controller ()) ~make_source)
      in
      let results = Mbac_sim.Parallel.run_tasks ~jobs tasks in
      List.iteri
        (fun i result ->
          if reps > 1 then Format.printf "--- replication %d ---@." i;
          Format.printf "%a@." Mbac_sim.Continuous_load.pp_result result)
        results;
      if reps > 1 then begin
        (* Student-t interval over the replication means: one batch per
           replication (replications are independent by construction, so
           batch means are exactly i.i.d. here). *)
        let batch_ci field =
          let bm = Mbac_stats.Batch_means.create ~batch_length:1.0 in
          List.iter
            (fun r -> Mbac_stats.Batch_means.add bm ~weight:1.0 (field r))
            results;
          ( Mbac_stats.Batch_means.mean bm,
            Mbac_stats.Batch_means.half_width bm ~confidence:0.95 )
        in
        let p_f_mean, p_f_hw =
          batch_ci (fun r -> r.Mbac_sim.Continuous_load.p_f)
        in
        let util_mean, util_hw =
          batch_ci (fun r -> r.Mbac_sim.Continuous_load.utilization)
        in
        Format.printf
          "across %d replications (batch means, 95%% CI): p_f = %.4g +- \
           %.2g, utilization = %.4g +- %.2g@."
          reps p_f_mean p_f_hw util_mean util_hw
      end;
      Format.printf "theory (eqn 37 at this T_m): %.4g@."
        (Mbac.Memory_formula.overflow_cached ~p ~t_m
           ~alpha_ce:(Mbac.Params.alpha_q p));
      Mbac_telemetry_cli.Flags.finish tele;
      Ok ()
      end

let source_conv =
  let parse = function
    | "rcbr" -> Ok Rcbr
    | "onoff" -> Ok Onoff
    | "ou" -> Ok Ou
    | "lrd" -> Ok Lrd
    | s -> Error (`Msg (Printf.sprintf "unknown source %S" s))
  in
  let print fmt k =
    Format.pp_print_string fmt
      (match k with Rcbr -> "rcbr" | Onoff -> "onoff" | Ou -> "ou" | Lrd -> "lrd")
  in
  Arg.conv (parse, print)

let controller_opt =
  Arg.(value & opt string "robust" & info [ "controller"; "c" ] ~docv:"NAME"
         ~doc:"perfect | memoryless | memory | robust | measured-sum | \
               hoeffding | gkk | peak-rate")

let source_opt =
  Arg.(value & opt source_conv Rcbr & info [ "source"; "s" ] ~docv:"KIND"
         ~doc:"rcbr | onoff | ou | lrd")

let fopt name default doc =
  Arg.(value & opt float default & info [ name ] ~docv:"X" ~doc)

let cmd =
  let term =
    Term.(
      const run_sim
      $ controller_opt $ source_opt
      $ fopt "n" 100.0 "Normalized capacity (system size)."
      $ fopt "mu" 1.0 "Per-flow mean rate."
      $ fopt "sigma-ratio" 0.3 "sigma / mu."
      $ fopt "t-h" 1000.0 "Mean flow holding time."
      $ fopt "t-c" 1.0 "Traffic correlation time-scale."
      $ fopt "p-q" 1e-3 "Target overflow probability."
      $ Arg.(value & opt (some float) None
             & info [ "t-m" ] ~docv:"X"
                 ~doc:"Estimator memory (default: T~_h).")
      $ Arg.(value & opt int 8_000_000
             & info [ "max-events" ] ~docv:"N" ~doc:"Event cap.")
      $ Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.")
      $ Arg.(value & opt int 1
             & info [ "reps" ] ~docv:"N"
                 ~doc:"Independent replications; each gets its own stream \
                       derived from --seed and the replication index.")
      $ Arg.(value & opt int (Mbac_sim.Parallel.default_jobs ())
             & info [ "jobs"; "j" ] ~docv:"N"
                 ~doc:"Worker domains for the replications (default: the \
                       core count, at most 8; clamped to the same cap, \
                       overridable via \\$MBAC_DOMAIN_CAP).  Output is \
                       identical for every value.")
      $ Arg.(value & flag
             & info [ "rare-event" ]
                 ~doc:"Estimate the deep-tail overflow probability with \
                       multilevel importance splitting instead of a direct \
                       run.  Ignores --reps; --jobs parallelizes clone \
                       trials with bit-identical output.")
      $ Arg.(value & opt int 6
             & info [ "rare-levels" ] ~docv:"K"
                 ~doc:"Splitting thresholds between base and capacity.")
      $ fopt "rare-base" 0.25
          "Excursion base as a fraction of the mean-to-capacity gap."
      $ Arg.(value & opt int 2048
             & info [ "rare-trials" ] ~docv:"N"
                 ~doc:"Clone trials per splitting level.")
      $ Arg.(value & opt (some float) None
             & info [ "rare-pilot-time" ] ~docv:"T"
                 ~doc:"Pilot collection window in simulated time (default: \
                       200 batch lengths).")
      $ Mbac_telemetry_cli.Flags.term)
  in
  Cmd.v
    (Cmd.info "mbac_sim"
       ~doc:"Simulate one admission-controlled bufferless link under \
             continuous load")
    Term.(term_result' ~usage:true term)

(* ---- mbac_sim network: routed multi-link topology on sharded wheels ---- *)

let run_network topo_spec topo_file shards controller_name source_kind n mu
    sigma_ratio t_h t_c p_q t_m setup_delay offered max_events seed jobs
    stats tele =
  let sigma = sigma_ratio *. mu in
  let capacity = n *. mu in
  (* per-link offered load [offered] = rho: arrivals at rho * C / (mu * t_h) *)
  let rate = offered *. n /. t_h in
  let topo =
    match topo_file with
    | Some path -> (
        match In_channel.with_open_text path In_channel.input_all with
        | text -> Mbac_net.Topology.parse text
        | exception Sys_error e -> Error e)
    | None -> Mbac_net.Topology.of_spec ~rate ~capacity topo_spec
  in
  (* Links can have different capacities (core-edge), so controllers are
     built per link from its capacity, scaling the paper's system size
     as n_l = C_l / mu. *)
  let build_controller ~capacity =
    let n_l = capacity /. mu in
    let p_l = Mbac.Params.make ~n:n_l ~mu ~sigma ~t_h ~t_c ~p_q in
    let t_h_tilde = Mbac.Params.t_h_tilde p_l in
    let t_m = match t_m with Some v -> v | None -> t_h_tilde in
    let peak = mu +. (3.0 *. sigma) in
    match controller_name with
    | "perfect" -> Ok (Mbac.Controller.perfect p_l)
    | "memoryless" -> Ok (Mbac.Controller.memoryless ~capacity ~p_ce:p_q)
    | "memory" -> Ok (Mbac.Controller.with_memory ~capacity ~p_ce:p_q ~t_m)
    | "robust" -> Ok (Mbac.Controller.robust p_l)
    | "measured-sum" ->
        Ok
          (Mbac.Controller.measured_sum ~capacity ~utilization_target:0.9
             ~window:t_h_tilde ~peak)
    | "hoeffding" ->
        Ok
          (Mbac.Controller.hoeffding ~capacity ~p_ce:p_q ~peak
             (Mbac.Estimator.ewma ~t_m))
    | "gkk" ->
        Ok
          (Mbac.Controller.gkk ~capacity ~p_ce:p_q ~prior_mu:mu
             ~prior_var:(sigma *. sigma) ~prior_weight:0.5)
    | "peak-rate" -> Ok (Mbac.Controller.peak_rate ~capacity ~peak)
    | other -> Error (Printf.sprintf "unknown controller %S" other)
  in
  match topo with
  | Error e -> Error e
  | Ok _ when shards < 1 -> Error "--shards must be >= 1"
  | Ok _ when jobs < 1 -> Error "--jobs must be >= 1"
  | Ok _ when tele.Mbac_telemetry_cli.Flags.trace_sample < 1 ->
      Error "--trace-sample must be >= 1"
  | Ok _
    when not
           (Float.is_finite tele.Mbac_telemetry_cli.Flags.series_interval
           && tele.Mbac_telemetry_cli.Flags.series_interval > 0.0) ->
      Error "--series-interval must be finite and > 0"
  | Ok topology -> (
      match build_controller ~capacity with
      | Error _ as e -> e
      | Ok probe ->
          Mbac_telemetry_cli.Flags.install tele;
          let lrd_trace =
            lazy
              (let trng = Mbac_stats.Rng.create ~seed:(seed + 1) in
               let params =
                 Mbac_traffic.Mpeg_synth.default_params ~mean_rate:mu
               in
               let raw =
                 Mbac_traffic.Mpeg_synth.generate trng params ~frames:65536
               in
               Mbac_traffic.Renegotiate.segments ~segment_len:24
                 ~percentile:0.95 raw)
          in
          (* materialize before the shard domains fan out (same reason
             as the single-link command: forcing a lazy races) *)
          if source_kind = Lrd then ignore (Lazy.force lrd_trace);
          let make_source rng ~start =
            match source_kind with
            | Rcbr ->
                Mbac_traffic.Rcbr.create rng
                  { Mbac_traffic.Rcbr.mu; sigma; t_c } ~start
            | Onoff ->
                let p_on = 1.0 /. (1.0 +. ((sigma /. mu) ** 2.0)) in
                let peak = mu /. p_on in
                Mbac_traffic.Onoff.create rng
                  { Mbac_traffic.Onoff.peak; mean_on = t_c *. (1.0 -. p_on);
                    mean_off = t_c *. p_on }
                  ~start
            | Ou ->
                Mbac_traffic.Ou_source.create rng
                  { Mbac_traffic.Ou_source.mu; sigma; t_c; dt = t_c /. 10.0 }
                  ~start
            | Lrd ->
                Mbac_traffic.Trace_source.create rng (Lazy.force lrd_trace)
                  ~start
          in
          let p_edge = Mbac.Params.make ~n ~mu ~sigma ~t_h ~t_c ~p_q in
          let t_h_tilde = Mbac.Params.t_h_tilde p_edge in
          let t_m_r = match t_m with Some v -> v | None -> t_h_tilde in
          let batch = 2.0 *. Float.max t_h_tilde (Float.max t_m_r t_c) in
          let cfg =
            { (Mbac_net.Network.default_config ~topology
                 ~holding_time_mean:t_h ~target_p_q:p_q)
              with
              Mbac_net.Network.shards;
              setup_delay =
                (match setup_delay with
                | Some v -> v
                | None -> t_h /. 100.0);
              warmup = 5.0 *. batch;
              batch_length = batch;
              max_events }
          in
          Format.printf
            "network: %d links, %d routes, %d shards, controller %s, \
             source %s@."
            (Mbac_net.Topology.num_links topology)
            (Mbac_net.Topology.num_routes topology)
            shards
            (Mbac.Controller.name probe)
            (match source_kind with
            | Rcbr -> "rcbr" | Onoff -> "onoff" | Ou -> "ou" | Lrd -> "lrd");
          let res =
            Mbac_net.Network.run ~jobs ~seed cfg
              ~make_controller:(fun ~link:_ ~capacity ->
                match build_controller ~capacity with
                | Ok c -> c
                | Error e -> invalid_arg e)
              ~make_source
          in
          Format.printf "%a" Mbac_net.Network.pp_result res;
          if stats then
            Format.printf "windows %d messages %d@."
              res.Mbac_net.Network.windows res.Mbac_net.Network.messages;
          Mbac_telemetry_cli.Flags.finish tele;
          Ok ())

let network_cmd =
  let term =
    Term.(
      const run_network
      $ Arg.(value & opt string "line:4"
             & info [ "topology" ] ~docv:"SPEC"
                 ~doc:"Topology generator: line:N | star:N | core-edge:ExC.")
      $ Arg.(value & opt (some file) None
             & info [ "topology-file" ] ~docv:"FILE"
                 ~doc:"Explicit topology: `link CAPACITY' and `route RATE \
                       LINK...' lines; overrides --topology.")
      $ Arg.(value & opt int 1
             & info [ "shards" ] ~docv:"N"
                 ~doc:"Link partitions, each with its own event wheel \
                       (1 .. min(links, 256)).  Output is identical for \
                       every value.")
      $ controller_opt $ source_opt
      $ fopt "n" 100.0 "Normalized edge-link capacity (system size)."
      $ fopt "mu" 1.0 "Per-flow mean rate."
      $ fopt "sigma-ratio" 0.3 "sigma / mu."
      $ fopt "t-h" 1000.0 "Mean flow holding time."
      $ fopt "t-c" 1.0 "Traffic correlation time-scale."
      $ fopt "p-q" 1e-3 "Target overflow probability."
      $ Arg.(value & opt (some float) None
             & info [ "t-m" ] ~docv:"X"
                 ~doc:"Estimator memory (default: T~_h).")
      $ Arg.(value & opt (some float) None
             & info [ "setup-delay" ] ~docv:"X"
                 ~doc:"Per-hop setup/notification delay, also the \
                       cross-shard lookahead (default: t-h / 100).")
      $ fopt "offered" 0.9
          "Offered load per link as a fraction of its capacity."
      $ Arg.(value & opt int 2_000_000
             & info [ "max-events" ] ~docv:"N" ~doc:"Event cap.")
      $ Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.")
      $ Arg.(value & opt int (Mbac_sim.Parallel.default_jobs ())
             & info [ "jobs"; "j" ] ~docv:"N"
                 ~doc:"Worker domains (default: the core count, at most 8; \
                       clamped via \\$MBAC_DOMAIN_CAP).  Output is \
                       identical for every value.")
      $ Arg.(value & flag
             & info [ "stats" ]
                 ~doc:"Also print window and cross-shard message counts \
                       (these legitimately depend on --shards).")
      $ Mbac_telemetry_cli.Flags.term)
  in
  Cmd.v
    (Cmd.info "mbac_sim network"
       ~doc:"Simulate admission control across a routed multi-link network")
    Term.(term_result' ~usage:true term)

let () =
  let argv = Sys.argv in
  if Array.length argv > 1 && argv.(1) = "network" then
    (* manual dispatch: the historical no-subcommand CLI (and its usage
       text, pinned by cram goldens) stays exactly as it was *)
    let argv =
      Array.append [| argv.(0) |] (Array.sub argv 2 (Array.length argv - 2))
    in
    exit (Cmd.eval network_cmd ~argv)
  else exit (Cmd.eval cmd)
