(* CLI for the paper-reproduction experiments:
     experiments --list
     experiments --run fig5 [--full] [--seed N]
     experiments --all [--full]                  *)

open Cmdliner

let run_experiments list_only ids all analysis_only full seed jobs csv_dir tele
    =
  match jobs with
  | Some j when j < 1 -> Error "--jobs must be >= 1"
  | _ when tele.Mbac_telemetry_cli.Flags.trace_sample < 1 ->
      Error "--trace-sample must be >= 1"
  | _
    when not
           (Float.is_finite tele.Mbac_telemetry_cli.Flags.series_interval
           && tele.Mbac_telemetry_cli.Flags.series_interval > 0.0) ->
      Error "--series-interval must be finite and > 0"
  | _ ->
  Mbac_telemetry_cli.Flags.install tele;
  Mbac_experiments.Common.seed := seed;
  (match jobs with
  | Some j -> Mbac_experiments.Common.jobs := j
  | None -> ());
  Mbac_experiments.Common.csv_dir := csv_dir;
  let profile =
    if full then Mbac_experiments.Common.Full else Mbac_experiments.Common.Quick
  in
  let fmt = Format.std_formatter in
  let result =
  if list_only then begin
    Format.fprintf fmt "Available experiments:@.";
    List.iter
      (fun e ->
        Format.fprintf fmt "  %-10s %s%s@." e.Mbac_experiments.Registry.id
          e.Mbac_experiments.Registry.title
          (if e.Mbac_experiments.Registry.simulation then "" else " [analysis]"))
      Mbac_experiments.Registry.all;
    Ok ()
  end
  else if all then begin
    Mbac_experiments.Registry.run_all ~profile fmt;
    Ok ()
  end
  else if analysis_only then begin
    Mbac_experiments.Registry.run_analysis_only ~profile fmt;
    Ok ()
  end
  else
    match ids with
    | [] -> Error "nothing to do: use --list, --all, --analysis or --run ID"
    | ids ->
        let rec go = function
          | [] -> Ok ()
          | id :: rest -> (
              match Mbac_experiments.Registry.find id with
              | Some e ->
                  Mbac_experiments.Registry.run_entry ~profile fmt e;
                  go rest
              | None -> Error (Printf.sprintf "unknown experiment %S" id))
        in
        go ids
  in
  (match result with
  | Ok () -> Mbac_telemetry_cli.Flags.finish tele
  | Error _ -> ());
  result

let list_flag =
  Arg.(value & flag & info [ "list"; "l" ] ~doc:"List available experiments.")

let run_ids =
  Arg.(value & opt_all string [] & info [ "run"; "r" ] ~docv:"ID"
         ~doc:"Run experiment $(docv) (repeatable).")

let all_flag = Arg.(value & flag & info [ "all"; "a" ] ~doc:"Run every experiment.")

let analysis_flag =
  Arg.(value & flag & info [ "analysis" ]
         ~doc:"Run only the analysis (no-simulation) experiments.")

let full_flag =
  Arg.(value & flag & info [ "full" ]
         ~doc:"Paper-grade accuracy (slow); default is the quick profile.")

let seed_opt =
  Arg.(value & opt int 20260706 & info [ "seed" ] ~docv:"N"
         ~doc:"Experiment random seed.")

let jobs_opt =
  Arg.(value & opt (some int) None
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Simulation worker domains (default: the core count, at \
                 most 8; explicit values are clamped to the same cap, \
                 overridable via \\$MBAC_DOMAIN_CAP).  Results are \
                 bit-identical for every value: streams are derived from \
                 --seed and the cell tag, never from the schedule.")

let csv_dir_opt =
  Arg.(value & opt (some string) None
       & info [ "csv-dir" ] ~docv:"DIR"
           ~doc:"Also write every result table as CSV under $(docv).")

let cmd =
  let term =
    Term.(
      const run_experiments $ list_flag $ run_ids $ all_flag $ analysis_flag
      $ full_flag $ seed_opt $ jobs_opt $ csv_dir_opt
      $ Mbac_telemetry_cli.Flags.term)
  in
  let exits = Cmd.Exit.defaults in
  Cmd.v
    (Cmd.info "experiments" ~exits
       ~doc:"Reproduce the figures of Grossglauser & Tse, 'A Framework for \
             Robust Measurement-Based Admission Control'")
    Term.(term_result' ~usage:true term)

let () = exit (Cmd.eval cmd)
