(* Offline analyzer for the flight-recorder outputs:
     mbac_report --trace t.jsonl --series s.jsonl [--metrics m.json]
   Turns raw --trace-out / --series-out dumps into per-controller
   summaries: admit-rate trajectory, estimator-drift statistics,
   overflow inter-arrival/duration quantiles, windowed p_f.  Exits
   non-zero on any schema or parse error, so the cram suites can use it
   as a self-check of the recorded formats. *)

open Cmdliner
module J = Mbac_telemetry.Json_parse

exception Schema of string

let schema file line msg = raise (Schema (Printf.sprintf "%s:%d: %s" file line msg))

(* Tiny one-pass mean/std accumulator (Welford); keeps the analyzer
   dependency-free beyond the telemetry library it decodes. *)
type welford = { mutable n : int; mutable mean : float; mutable m2 : float }

let w_create () = { n = 0; mean = 0.0; m2 = 0.0 }

let w_add w x =
  w.n <- w.n + 1;
  let d = x -. w.mean in
  w.mean <- w.mean +. (d /. float_of_int w.n);
  w.m2 <- w.m2 +. (d *. (x -. w.mean))

let w_mean w = if w.n = 0 then nan else w.mean
let w_std w = if w.n < 2 then nan else sqrt (w.m2 /. float_of_int (w.n - 1))

(* Exact empirical quantiles (the analyzer is offline; no buckets). *)
let quantile_fn values =
  let a = Array.of_list values in
  Array.sort compare a;
  let n = Array.length a in
  fun q ->
    if n = 0 then nan
    else
      a.(max 0 (min (n - 1) (int_of_float (Float.ceil (q *. float_of_int n)) - 1)))

let read_lines file =
  let ic =
    try open_in file
    with Sys_error msg -> raise (Schema msg)
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

let parse_line file lineno line =
  match J.parse line with
  | Ok v -> v
  | Error msg -> schema file lineno msg

let require file lineno what = function
  | Some v -> v
  | None -> schema file lineno ("missing or mistyped " ^ what)

(* ---------------- trace analysis ---------------- *)

type ctl = {
  mutable decisions : int;
  mutable admits : int;
  mutable est_first_mu : float;   (* nan until seen *)
  mutable est_last_mu : float;
  mu : welford;
  sigma : welford;
  mutable runs : int;
  pf : welford;
  util : welford;
  mutable ovf_count : int;
  mutable inter : float list;
  mutable last_ovf : float;       (* nan: none yet in this segment *)
  mutable durations : float list;
}

let ctl_create () =
  { decisions = 0; admits = 0; est_first_mu = nan; est_last_mu = nan;
    mu = w_create (); sigma = w_create (); runs = 0; pf = w_create ();
    util = w_create (); ovf_count = 0; inter = []; last_ovf = nan;
    durations = [] }

type burst_cell = { mutable bursts : int; mutable m0_sum : int }

let analyze_trace fmt file =
  let lines = read_lines file in
  let kinds : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  let ctls : (string, ctl) Hashtbl.t = Hashtbl.create 8 in
  let bursts : (int, burst_cell) Hashtbl.t = Hashtbl.create 8 in
  let current = ref "(none)" in
  let ctl () =
    match Hashtbl.find_opt ctls !current with
    | Some c -> c
    | None ->
        let c = ctl_create () in
        Hashtbl.replace ctls !current c;
        c
  in
  let n_lines = ref 0 in
  List.iteri
    (fun i line ->
      if String.trim line <> "" then begin
        let lineno = i + 1 in
        incr n_lines;
        let v = parse_line file lineno line in
        let t =
          require file lineno {|"t" (number)|}
            (Option.bind (J.member "t" v) J.to_float)
        in
        let kind =
          require file lineno {|"kind" (string)|}
            (Option.bind (J.member "kind" v) J.to_string)
        in
        (match Hashtbl.find_opt kinds kind with
        | Some r -> incr r
        | None -> Hashtbl.replace kinds kind (ref 1));
        let float_field name =
          require file lineno
            (Printf.sprintf "%S (number) in %s" name kind)
            (Option.bind (J.member name v) J.to_float)
        in
        let int_field name =
          require file lineno
            (Printf.sprintf "%S (integer) in %s" name kind)
            (Option.bind (J.member name v) J.to_int)
        in
        let str_field name =
          require file lineno
            (Printf.sprintf "%S (string) in %s" name kind)
            (Option.bind (J.member name v) J.to_string)
        in
        match kind with
        | "run_start" ->
            current := str_field "controller";
            let c = ctl () in
            c.last_ovf <- nan
        | "decision" ->
            let admit =
              require file lineno {|"admit" (bool) in decision|}
                (Option.bind (J.member "admit" v) J.to_bool)
            in
            let c = ctl () in
            c.decisions <- c.decisions + 1;
            if admit then c.admits <- c.admits + 1
        | "estimator" ->
            let mu = float_field "mu_hat" and sg = float_field "sigma_hat" in
            let c = ctl () in
            if Float.is_nan c.est_first_mu then c.est_first_mu <- mu;
            c.est_last_mu <- mu;
            w_add c.mu mu;
            w_add c.sigma sg
        | "overflow_start" ->
            let c = ctl () in
            c.ovf_count <- c.ovf_count + 1;
            if not (Float.is_nan c.last_ovf) then
              c.inter <- (t -. c.last_ovf) :: c.inter;
            c.last_ovf <- t
        | "overflow_end" ->
            let c = ctl () in
            c.durations <- float_field "duration" :: c.durations
        | "run_end" ->
            let controller = str_field "controller" in
            let c =
              (* run_end carries its controller name; trust it even if no
                 run_start was seen (older traces have none). *)
              match Hashtbl.find_opt ctls controller with
              | Some c -> c
              | None ->
                  let c = ctl_create () in
                  Hashtbl.replace ctls controller c;
                  c
            in
            c.runs <- c.runs + 1;
            w_add c.pf (float_field "p_f");
            w_add c.util (float_field "utilization");
            c.last_ovf <- nan;
            current := "(none)"
        | "burst" ->
            let n_offered = int_field "n_offered" in
            let m_0 = int_field "m_0" in
            ignore (float_field "mu_hat");
            let cell =
              match Hashtbl.find_opt bursts n_offered with
              | Some c -> c
              | None ->
                  let c = { bursts = 0; m0_sum = 0 } in
                  Hashtbl.replace bursts n_offered c;
                  c
            in
            cell.bursts <- cell.bursts + 1;
            cell.m0_sum <- cell.m0_sum + m_0
        | _ ->
            (* Unknown kinds are counted but not interpreted: the format
               may grow, and an analyzer should not reject the future. *)
            ()
      end)
    lines;
  Format.fprintf fmt "== Trace %s: %d events ==@." file !n_lines;
  List.iter
    (fun (kind, count) -> Format.fprintf fmt "  %-16s %8d@." kind !count)
    (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []));
  let ctl_list =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) ctls [])
  in
  List.iter
    (fun (name, c) ->
      if c.decisions > 0 || c.mu.n > 0 || c.runs > 0 || c.ovf_count > 0 then begin
        Format.fprintf fmt "== Controller %s ==@." name;
        if c.runs > 0 then
          Format.fprintf fmt
            "  runs: %d  p_f: %.4g +- %.2g  utilization: %.4g +- %.2g@."
            c.runs (w_mean c.pf) (w_std c.pf) (w_mean c.util) (w_std c.util);
        if c.decisions > 0 then
          Format.fprintf fmt "  decisions: %d  admit rate: %.4g@." c.decisions
            (float_of_int c.admits /. float_of_int c.decisions);
        if c.mu.n > 0 then
          Format.fprintf fmt
            "  estimator: %d samples  mu_hat %.4g -> %.4g (drift %+.3g)  \
             mean %.4g +- %.2g  sigma_hat mean %.4g@."
            c.mu.n c.est_first_mu c.est_last_mu
            (c.est_last_mu -. c.est_first_mu)
            (w_mean c.mu) (w_std c.mu) (w_mean c.sigma);
        if c.ovf_count > 0 then begin
          Format.fprintf fmt "  overflow episodes: %d@." c.ovf_count;
          (match c.inter with
          | [] -> ()
          | l ->
              let q = quantile_fn l in
              Format.fprintf fmt
                "    inter-arrival: p50 %.4g  p90 %.4g  p99 %.4g@." (q 0.5)
                (q 0.9) (q 0.99));
          match c.durations with
          | [] -> ()
          | l ->
              let q = quantile_fn l in
              Format.fprintf fmt
                "    duration:      p50 %.4g  p90 %.4g  p99 %.4g@." (q 0.5)
                (q 0.9) (q 0.99)
        end
      end)
    ctl_list;
  let burst_list =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) bursts [])
  in
  if burst_list <> [] then begin
    Format.fprintf fmt "== Burst admissions ==@.";
    List.iter
      (fun (n_offered, c) ->
        Format.fprintf fmt
          "  n_offered=%d: bursts %d  mean m_0 %.4g  mean admitted fraction \
           %.4g@."
          n_offered c.bursts
          (float_of_int c.m0_sum /. float_of_int c.bursts)
          (float_of_int c.m0_sum
          /. float_of_int (c.bursts * n_offered)))
      burst_list
  end

(* ---------------- series analysis ---------------- *)

type series_acc = {
  mutable windows : int;
  mutable starts : int;     (* window-0 lines: run starts, robust to the
                               per-shard run index resetting across
                               parallel replications *)
  mutable max_run : int;
  adm : welford;            (* admitted flows per window *)
  wpf : welford;            (* windowed p_f, continuous-load labels only *)
  mutable wpf_max : float;
  mutable last_run : int;
  mutable last_t : float;
}

let analyze_series fmt file =
  let lines = read_lines file in
  let labels : (string, series_acc) Hashtbl.t = Hashtbl.create 8 in
  let n_lines = ref 0 in
  List.iteri
    (fun i line ->
      if String.trim line <> "" then begin
        let lineno = i + 1 in
        incr n_lines;
        let v = parse_line file lineno line in
        let t =
          require file lineno {|"t" (number)|}
            (Option.bind (J.member "t" v) J.to_float)
        in
        let kind =
          require file lineno {|"kind" (string)|}
            (Option.bind (J.member "kind" v) J.to_string)
        in
        if kind <> "window" then
          schema file lineno (Printf.sprintf "unexpected kind %S" kind);
        let label =
          require file lineno {|"label" (string)|}
            (Option.bind (J.member "label" v) J.to_string)
        in
        let run =
          require file lineno {|"run" (integer)|}
            (Option.bind (J.member "run" v) J.to_int)
        in
        let window =
          require file lineno {|"window" (integer)|}
            (Option.bind (J.member "window" v) J.to_int)
        in
        let group name =
          require file lineno (Printf.sprintf "%S (object)" name)
            (Option.bind (J.member name v) J.to_obj)
        in
        let counters = group "counters" in
        let sums = group "sums" in
        let gauges = group "gauges" in
        ignore (group "histograms");
        let acc =
          match Hashtbl.find_opt labels label with
          | Some a -> a
          | None ->
              let a =
                { windows = 0; starts = 0; max_run = 0; adm = w_create ();
                  wpf = w_create (); wpf_max = nan; last_run = -1;
                  last_t = 0.0 }
              in
              Hashtbl.replace labels label a;
              a
        in
        acc.windows <- acc.windows + 1;
        if window = 0 then acc.starts <- acc.starts + 1;
        if run > acc.max_run then acc.max_run <- run;
        let start =
          if window = 0 || run <> acc.last_run then 0.0 else acc.last_t
        in
        acc.last_run <- run;
        acc.last_t <- t;
        let counter name =
          match List.assoc_opt name counters with
          | Some c -> (
              match J.to_int c with
              | Some i -> i
              | None ->
                  schema file lineno
                    (Printf.sprintf "counter %S is not an integer" name))
          | None -> 0
        in
        w_add acc.adm
          (float_of_int
             (counter "sim_flows_admitted_total"
             + counter "impulsive_flows_admitted_total"));
        (* Windowed p_f = overflow time accrued in the window over the
           window length; only continuous-load windows carry the marker
           gauge (overflow time is folded in at episode close, so a long
           episode lands in the window that closes it). *)
        if List.mem_assoc "sim_window_load" gauges && t > start then begin
          let dovf =
            match List.assoc_opt "sim_overflow_time" sums with
            | Some s -> (
                match J.to_float s with
                | Some f -> f
                | None ->
                    schema file lineno "sum \"sim_overflow_time\" not a number")
            | None -> 0.0
          in
          let wpf = dovf /. (t -. start) in
          w_add acc.wpf wpf;
          if Float.is_nan acc.wpf_max || wpf > acc.wpf_max then
            acc.wpf_max <- wpf
        end
      end)
    lines;
  Format.fprintf fmt "== Series %s: %d windows ==@." file !n_lines;
  List.iter
    (fun (label, a) ->
      Format.fprintf fmt "  %s: runs %d  windows %d  admitted/window %.4g +- %.2g"
        (if label = "" then "(unlabelled)" else label)
        (max (a.max_run + 1) a.starts)
        a.windows (w_mean a.adm) (w_std a.adm);
      if a.wpf.n > 0 then
        Format.fprintf fmt "  windowed p_f mean %.4g max %.4g" (w_mean a.wpf)
          a.wpf_max;
      Format.fprintf fmt "@.")
    (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) labels []))

(* ---------------- metrics snapshot ---------------- *)

let analyze_metrics fmt file =
  let content =
    try
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg -> raise (Schema msg)
  in
  let v =
    match J.parse content with
    | Ok v -> v
    | Error msg -> raise (Schema (Printf.sprintf "%s: %s" file msg))
  in
  let metrics =
    match J.to_obj v with
    | Some l -> l
    | None -> raise (Schema (Printf.sprintf "%s: top level is not an object" file))
  in
  Format.fprintf fmt "== Metrics %s: %d metrics ==@." file (List.length metrics);
  List.iter
    (fun (name, m) ->
      let kind = Option.bind (J.member "kind" m) J.to_string in
      match kind with
      | Some "quantile_histogram" ->
          let f key =
            match Option.bind (J.member key m) J.to_float with
            | Some x -> x
            | None ->
                raise
                  (Schema
                     (Printf.sprintf "%s: %s missing %S" file name key))
          in
          Format.fprintf fmt
            "  %s: count %.0f  p50 %.4g  p90 %.4g  p99 %.4g  p999 %.4g@." name
            (f "count") (f "p50") (f "p90") (f "p99") (f "p999")
      | Some _ -> ()
      | None ->
          raise (Schema (Printf.sprintf "%s: %s has no kind" file name)))
    metrics

(* ---------------- serve decision log ---------------- *)

(* The serving engine's JSONL decision log: one object per Log_decision
   request, {"seq","criterion","admit","flows"}.  Validates that [seq]
   is dense from 0 (the engine assigns it) and reports per-criterion
   admit rates plus the flows-in-system range. *)

type serve_ctl = {
  mutable sd_decisions : int;
  mutable sd_admits : int;
  sd_flows : welford;
}

let analyze_serve_log fmt file =
  let lines = read_lines file in
  let criteria : (string, serve_ctl) Hashtbl.t = Hashtbl.create 8 in
  let total = ref 0 in
  let min_flows = ref max_int and max_flows = ref min_int in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let v = parse_line file lineno line in
      let field what conv name =
        require file lineno what (Option.bind (J.member name v) conv)
      in
      let seq = field "int seq" J.to_int "seq" in
      let criterion = field "string criterion" J.to_string "criterion" in
      let admit = field "bool admit" J.to_bool "admit" in
      let flows = field "int flows" J.to_int "flows" in
      if seq <> i then
        schema file lineno
          (Printf.sprintf "seq %d out of order (expected %d)" seq i);
      if flows < 0 then schema file lineno "negative flows";
      let c =
        match Hashtbl.find_opt criteria criterion with
        | Some c -> c
        | None ->
            let c =
              { sd_decisions = 0; sd_admits = 0; sd_flows = w_create () }
            in
            Hashtbl.add criteria criterion c;
            c
      in
      c.sd_decisions <- c.sd_decisions + 1;
      if admit then c.sd_admits <- c.sd_admits + 1;
      w_add c.sd_flows (float_of_int flows);
      min_flows := min !min_flows flows;
      max_flows := max !max_flows flows;
      incr total)
    lines;
  Format.fprintf fmt "== Serve decision log %s: %d decisions, %d criteria ==@."
    file !total (Hashtbl.length criteria);
  if !total > 0 then
    Format.fprintf fmt "  flows in system: min %d max %d@." !min_flows
      !max_flows;
  List.iter
    (fun (name, c) ->
      Format.fprintf fmt
        "  %s: decisions %d  admits %d  admit rate %.4f  mean flows %.1f@."
        name c.sd_decisions c.sd_admits
        (float_of_int c.sd_admits /. float_of_int c.sd_decisions)
        (w_mean c.sd_flows))
    (List.sort compare
       (Hashtbl.fold (fun k v acc -> (k, v) :: acc) criteria []))

let run trace series metrics serve_log =
  if trace = None && series = None && metrics = None && serve_log = None then
    Error
      "nothing to do: pass --trace, --series, --metrics, and/or --serve-log"
  else begin
    let fmt = Format.std_formatter in
    try
      Option.iter (analyze_trace fmt) trace;
      Option.iter (analyze_series fmt) series;
      Option.iter (analyze_metrics fmt) metrics;
      Option.iter (analyze_serve_log fmt) serve_log;
      Ok ()
    with Schema msg -> Error msg
  end

let trace_opt =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"JSONL event trace written by --trace-out.")

let series_opt =
  Arg.(value & opt (some string) None
       & info [ "series" ] ~docv:"FILE"
           ~doc:"JSONL windowed time series written by --series-out.")

let metrics_opt =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"JSON metric snapshot written by --metrics-out.")

let serve_log_opt =
  Arg.(value & opt (some string) None
       & info [ "serve-log" ] ~docv:"FILE"
           ~doc:"JSONL decision log written by mbac_serve/mbac_loadgen \
                 --decision-log.")

let cmd =
  let term =
    Term.(const run $ trace_opt $ series_opt $ metrics_opt $ serve_log_opt)
  in
  Cmd.v
    (Cmd.info "mbac_report"
       ~doc:"Summarize recorded telemetry: per-controller admit rates, \
             estimator drift, overflow quantiles, and windowed overflow \
             probability from --trace-out / --series-out / --metrics-out \
             files, and admission decisions from a serving-engine \
             --decision-log.  Validates the schemas and exits non-zero \
             on any malformed input.")
    Term.(term_result' ~usage:true term)

let () = exit (Cmd.eval cmd)
