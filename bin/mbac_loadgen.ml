(* Deterministic load generator for the serving engine:
     mbac_loadgen --socket /tmp/mbac.sock --requests 10000 --shutdown
     mbac_loadgen --inproc --requests 10000 --decision-log decisions.jsonl
   The same seed and workload produce the same request stream on either
   transport; --inproc hosts the engine in this process (configured with
   the same --capacity/--criteria/--estimator flags mbac_serve takes). *)

open Cmdliner

let run socket inproc capacity criteria_s estimator measure_every decision_log
    seed requests arrival_mean hold_mean load_mean load_std shutdown tele =
  match
    let criteria = Mbac_serve.Spec.criteria_of_string criteria_s in
    let estimator = Mbac_serve.Spec.estimator_of_string estimator in
    (criteria, estimator)
  with
  | exception Invalid_argument msg -> Error msg
  | criteria, estimator -> (
      match (socket, inproc) with
      | None, false -> Error "pick a transport: --socket PATH or --inproc"
      | Some _, true -> Error "--socket and --inproc are mutually exclusive"
      | transport, _ -> (
          Mbac_telemetry_cli.Flags.install tele;
          let log_buf =
            match (transport, decision_log) with
            | None, Some _ -> Some (Buffer.create 4096)
            | _ -> None
          in
          let client =
            match transport with
            | Some path -> Mbac_serve.Client.connect_unix ~path ()
            | None ->
                let engine =
                  Mbac_serve.Engine.create ?decision_log:log_buf
                    { capacity; criteria; estimator; measure_every }
                in
                Mbac_serve.Client.inproc engine
          in
          let workload =
            { Mbac_serve.Loadgen.seed; requests; arrival_mean; hold_mean;
              load_mean; load_std; n_criteria = List.length criteria }
          in
          match Mbac_serve.Loadgen.run client workload with
          | exception (Invalid_argument msg | Failure msg) ->
              Mbac_serve.Client.close client;
              Error msg
          | summary ->
              if shutdown then
                ignore (Mbac_serve.Client.rpc client Mbac_serve.Protocol.Shutdown);
              Mbac_serve.Client.close client;
              (match (decision_log, log_buf) with
              | Some path, Some buf ->
                  let oc = open_out path in
                  Buffer.output_buffer oc buf;
                  close_out oc
              | Some _, None ->
                  prerr_endline
                    "mbac_loadgen: note: --decision-log only applies to \
                     --inproc (the daemon owns the log over a socket)"
              | None, _ -> ());
              Mbac_serve.Loadgen.print_summary stdout summary;
              Mbac_telemetry_cli.Flags.finish tele;
              Ok ()))

let fopt name default doc =
  Arg.(value & opt float default & info [ name ] ~docv:"X" ~doc)

let cmd =
  let term =
    Term.(
      const run
      $ Arg.(value & opt (some string) None
             & info [ "socket" ] ~docv:"PATH"
                 ~doc:"Connect to a running mbac_serve daemon.")
      $ Arg.(value & flag
             & info [ "inproc" ]
                 ~doc:"Host the engine in this process instead (same \
                       protocol bytes, no kernel).")
      $ fopt "capacity" 100.0 "Link capacity (--inproc engine)."
      $ Arg.(value & opt string "ce:0.01"
             & info [ "criteria" ] ~docv:"SPECS"
                 ~doc:"Criteria list; its length is the number of \
                       criteria Decide requests are spread over, and \
                       --inproc builds the engine from it.")
      $ Arg.(value & opt string "ewma:100"
             & info [ "estimator" ] ~docv:"SPEC"
                 ~doc:"Estimator spec (--inproc engine).")
      $ Arg.(value & opt int 16
             & info [ "measure-every" ] ~docv:"K"
                 ~doc:"Measurement cadence (--inproc engine).")
      $ Arg.(value & opt (some string) None
             & info [ "decision-log" ] ~docv:"FILE"
                 ~doc:"Write the --inproc engine's JSONL decision log to \
                       FILE.")
      $ Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.")
      $ Arg.(value & opt int 1000
             & info [ "requests" ] ~docv:"N"
                 ~doc:"Decide requests to issue.")
      $ fopt "arrival-mean" 1.0 "Mean virtual inter-arrival time."
      $ fopt "hold-mean" 100.0 "Mean virtual flow holding time."
      $ fopt "load-mean" 1.0 "Per-flow offered load, lognormal mean."
      $ fopt "load-std" 0.3 "Per-flow offered load, lognormal std."
      $ Arg.(value & flag
             & info [ "shutdown" ]
                 ~doc:"Send Shutdown when done (stops the daemon).")
      $ Mbac_telemetry_cli.Flags.term)
  in
  Cmd.v
    (Cmd.info "mbac_loadgen"
       ~doc:"Generate a deterministic admission-request workload against \
             a serving engine")
    Term.(term_result' ~usage:true term)

let () = exit (Cmd.eval cmd)
