(* Online admission-decision daemon:
     mbac_serve --socket /tmp/mbac.sock --capacity 120 \
       --criteria ce:0.01,hoeffding:0.01:2.0 --estimator ewma:100
   Serves the binary protocol until a client sends Shutdown. *)

open Cmdliner

let run socket capacity criteria estimator measure_every measure_interval
    decision_log tele =
  match
    let criteria = Mbac_serve.Spec.criteria_of_string criteria in
    let estimator = Mbac_serve.Spec.estimator_of_string estimator in
    (criteria, estimator)
  with
  | exception Invalid_argument msg -> Error msg
  | criteria, estimator -> (
      if measure_every < 0 then Error "--measure-every must be >= 0"
      else if
        match measure_interval with Some t -> not (t > 0.0) | None -> false
      then Error "--measure-interval must be > 0"
      else begin
        Mbac_telemetry_cli.Flags.install tele;
        let log_buf = Option.map (fun _ -> Buffer.create 4096) decision_log in
        match
          Mbac_serve.Engine.create ?decision_log:log_buf
            { capacity; criteria; estimator; measure_every }
        with
        | exception Invalid_argument msg -> Error msg
        | engine ->
            (match measure_interval with
            | Some interval ->
                Mbac_serve.Engine.start_background engine ~interval
            | None -> ());
            Logs.info (fun m -> m "serving on %s" socket);
            Mbac_serve.Server.run_unix engine ~path:socket;
            (match measure_interval with
            | Some _ -> Mbac_serve.Engine.stop_background engine
            | None -> ());
            (match (decision_log, log_buf) with
            | Some path, Some buf ->
                let oc = open_out path in
                Buffer.output_buffer oc buf;
                close_out oc
            | _ -> ());
            Mbac_telemetry_cli.Flags.finish tele;
            Ok ()
      end)

let cmd =
  let term =
    Term.(
      const run
      $ Arg.(required
             & opt (some string) None
             & info [ "socket" ] ~docv:"PATH"
                 ~doc:"Unix socket path to serve on (stale files are \
                       replaced; removed on exit).")
      $ Arg.(value & opt float 100.0
             & info [ "capacity" ] ~docv:"C" ~doc:"Link capacity.")
      $ Arg.(value & opt string "ce:0.01"
             & info [ "criteria" ] ~docv:"SPECS"
                 ~doc:"Comma-separated admission criteria: ce:<p_ce> \
                       (certainty-equivalent Gaussian) or \
                       hoeffding:<p_ce>:<peak>.  Decide requests index \
                       into this list.")
      $ Arg.(value & opt string "ewma:100"
             & info [ "estimator" ] ~docv:"SPEC"
                 ~doc:"memoryless | ewma:<t_m> | window:<t_w> | \
                       aggregate:<t_m>.")
      $ Arg.(value & opt int 16
             & info [ "measure-every" ] ~docv:"K"
                 ~doc:"Run a measurement pass after every K-th \
                       add/subtract (deterministic; 0 disables).")
      $ Arg.(value & opt (some float) None
             & info [ "measure-interval" ] ~docv:"T"
                 ~doc:"Also run a background measurement domain every T \
                       wall-clock seconds.")
      $ Arg.(value & opt (some string) None
             & info [ "decision-log" ] ~docv:"FILE"
                 ~doc:"Write the JSONL decision log (one line per \
                       Log_decision request) to FILE on shutdown.")
      $ Mbac_telemetry_cli.Flags.term)
  in
  Cmd.v
    (Cmd.info "mbac_serve"
       ~doc:"Serve online admission decisions over a Unix-socket binary \
             protocol")
    Term.(term_result' ~usage:true term)

let () = exit (Cmd.eval cmd)
